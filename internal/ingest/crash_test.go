package ingest

import (
	"context"
	"fmt"
	"maps"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/vfs"
)

// The ingest crash matrix re-runs a recorded async workload once per
// fault point on the enqueue→coalesce→commit→ack path: every WAL write
// and fsync, every segment build, install and retirement performed while
// the batcher is draining, each failing once and each crashing the
// filesystem once. The recovery contract differs from the synchronous
// fault matrix in one essential way: coalescing and curve-key sorting
// mean a torn batch is NOT a prefix of the global op log — but it IS a
// suffix-truncation per key, because each key's ops flow through one
// stripe in enqueue order. So the checker is per-key: the recovered value
// of key k must be the outcome of some op on k at or after k's last
// ACKED op (acks are durable — one fsync covered the whole batch), and a
// key may be absent only if it has no acked surviving write.

const (
	icWaves    = 6
	icWaveOps  = 16
	icRingCap  = 256
	icMaxBatch = 8
)

func icOpts(fsys vfs.FS) engine.Options {
	o := igOpts()
	o.SyncWrites = true
	o.FS = fsys
	return o
}

// icRun drives the recorded workload through a fresh pipeline against
// dir: waves of async enqueues, a quiesce (Drain) and an explicit Flush
// after each wave so segment builds, installs and WAL retirements all
// happen while acked batches exist. Returns per-op acked flags.
func icRun(t *testing.T, dir string, fsys vfs.FS, ops []igOp) []bool {
	t.Helper()
	acked := make([]bool, len(ops))
	e, err := engine.Open(dir, igCurve(t), icOpts(fsys))
	if err != nil {
		return acked // nothing ran, nothing acked
	}
	defer e.Close() //nolint:errcheck // a crashed filesystem cannot close cleanly
	p, err := NewEngine(e, Config{Ring: icRingCap, MaxBatch: icMaxBatch})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for w := 0; w < icWaves; w++ {
		lo := w * icWaveOps
		hs := make([]*Handle, 0, icWaveOps)
		for i := lo; i < lo+icWaveOps && i < len(ops); i++ {
			var h *Handle
			var herr error
			if ops[i].del {
				h, herr = p.DeleteAsync(ctx, ops[i].pt)
			} else {
				h, herr = p.PutAsync(ctx, ops[i].pt, ops[i].pay)
			}
			if herr != nil {
				hs = append(hs, nil)
				continue
			}
			hs = append(hs, h)
		}
		for j, h := range hs {
			if h != nil && h.Wait(ctx) == nil {
				acked[lo+j] = true
			}
		}
		e.Flush() //nolint:errcheck // fault runs flush into injected errors
	}
	p.Close() //nolint:errcheck // sticky batch errors are expected here
	return acked
}

// icRecover reopens dir on the real filesystem and returns the surviving
// key → payload map.
func icRecover(t *testing.T, dir string, o curve.Curve) map[uint64]uint64 {
	t.Helper()
	e, err := engine.Open(dir, o, igOpts())
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	defer e.Close()
	recs, _, err := e.Query(o.Universe().Rect())
	if err != nil {
		t.Fatalf("query after fault: %v", err)
	}
	got := make(map[uint64]uint64, len(recs))
	for _, r := range recs {
		got[o.Index(r.Point)] = r.Payload
	}
	return got
}

// icCheck is the per-key acked-suffix consistency checker described at
// the top of the file.
func icCheck(t *testing.T, o curve.Curve, ops []igOp, acked []bool, got map[uint64]uint64) {
	t.Helper()
	type ko struct {
		idx int
		pay uint64
		del bool
	}
	byKey := make(map[uint64][]ko)
	for i, op := range ops {
		k := o.Index(op.pt)
		byKey[k] = append(byKey[k], ko{i, op.pay, op.del})
	}
	for k, seq := range byKey {
		last := -1
		for j, op := range seq {
			if acked[op.idx] {
				last = j
			}
		}
		v, present := got[k]
		legal := last == -1 && !present // no acked op: never-applied is fine
		for j := max(last, 0); j < len(seq) && !legal; j++ {
			if seq[j].del {
				legal = !present
			} else {
				legal = present && v == seq[j].pay
			}
		}
		if !legal {
			t.Errorf("key %d: recovered (present=%v, payload=%d) matches no state at or after "+
				"its last acked op (%d of %d ops on this key)", k, present, v, last+1, len(seq))
		}
	}
	for k := range got {
		if _, ok := byKey[k]; !ok {
			t.Errorf("recovered key %d was never written", k)
		}
	}
}

// icFinal is the fully-applied state — every op in log order.
func icFinal(o curve.Curve, ops []igOp) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, op := range ops {
		k := o.Index(op.pt)
		if op.del {
			delete(m, k)
		} else {
			m[k] = op.pay
		}
	}
	return m
}

func TestIngestCrashMatrix(t *testing.T) {
	ops := igWorkload(icWaves * icWaveOps)
	o := igCurve(t)

	filters := []vfs.Fault{
		{Op: vfs.OpWrite, Path: "wal-"},
		{Op: vfs.OpSync, Path: "wal-"},
		{Op: vfs.OpAny, Path: ".pst.tmp"},
		{Op: vfs.OpRename},
		{Op: vfs.OpSyncDir},
		{Op: vfs.OpRemove},
	}

	// Enumeration pass: count-only rules tally how many operations each
	// filter matches under the recorded async workload, and the fault-free
	// run pins the baseline (everything acked, everything recovered).
	inj := vfs.NewInjecting(vfs.OS{})
	inj.SetFaults(filters...)
	enumDir := t.TempDir()
	acked := icRun(t, enumDir, inj, ops)
	for i, a := range acked {
		if !a {
			t.Fatalf("fault-free run did not ack op %d", i)
		}
	}
	if got := icRecover(t, enumDir, o); !maps.Equal(got, icFinal(o, ops)) {
		t.Fatalf("fault-free run recovered %d records, want the full final state", len(got))
	}

	maxPoints := int64(5)
	if testing.Short() {
		maxPoints = 2
	}
	for fi, f := range filters {
		total := inj.Matched(fi)
		if total == 0 {
			t.Fatalf("filter %+v matched no operations — the workload no longer exercises it", f)
		}
		stride := (total + maxPoints - 1) / maxPoints
		for _, kind := range []vfs.Kind{vfs.KindFail, vfs.KindCrash} {
			for n := int64(1); n <= total; n += stride {
				name := fmt.Sprintf("%s-%s-%s-n%d", f.Op, f.Path, kind, n)
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					ifs := vfs.NewInjecting(vfs.OS{})
					ifs.SetFaults(vfs.Fault{Op: f.Op, Path: f.Path, N: n, Kind: kind})
					got := icRun(t, dir, ifs, ops)
					if len(ifs.Injected()) == 0 {
						// Batch boundaries shift run to run, so a late fault
						// point may not be reached again; the run is then
						// fault-free and must behave like one.
						for i, a := range got {
							if !a {
								t.Fatalf("fault never fired but op %d was not acked", i)
							}
						}
					}
					icCheck(t, o, ops, got, icRecover(t, dir, o))
				})
			}
		}
	}
}
