package ingest

import (
	"context"
	"sync"
	"testing"

	"github.com/onioncurve/onion/internal/engine"
)

// fuzzTarget stripes a single engine by key modulus — deliberately NOT
// contiguous ranges, so consecutive curve keys land on different stripes
// and every batch crosses "shard" boundaries. Correctness only needs
// each key owned by one stripe, which modulus gives; the concurrent
// ApplyBatch calls then contend on the engine's WAL exactly like real
// shards contend on the filesystem.
type fuzzTarget struct {
	e *engine.Engine
	n int
}

func (f fuzzTarget) Stripes() int             { return f.n }
func (f fuzzTarget) StripeOf(key uint64) int  { return int(key % uint64(f.n)) }
func (f fuzzTarget) ApplyBatch(_ int, ops []engine.BatchOp) error {
	return f.e.PutBatch(ops)
}

// FuzzIngestBatcher fuzzes op interleavings through a deliberately tiny
// pipeline — an 8-slot ring (so enqueues race ring-full constantly),
// 5-op batches (so coalescing and batch boundaries churn), three
// modulus stripes (so adjacent keys cross stripe boundaries) — against
// two oracles: a brute-force map applied in log order, and a second
// engine fed the same log through synchronous Put/Delete. Records must
// match both exactly.
func FuzzIngestBatcher(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 5, 10, 0, 5, 20, 1, 5, 30, 2}) // same-key put/put/put across producers
	f.Add([]byte{2, 7, 1, 0, 7, 0, 1, 7, 2, 0})    // put/delete/put on one key
	f.Add([]byte{0, 0, 1, 0, 1, 1, 0, 2, 1, 0, 3, 1, 0, 4, 1, 0, 5, 1, 0}) // stripe-adjacent keys
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		producers := 1 + int(data[0]%3)
		var ops []igOp
		for i := 1; i+2 < len(data) && len(ops) < 512; i += 3 {
			ops = append(ops, igOp{
				pt:  igPoint(int(data[i]) % 48),
				pay: uint64(data[i+1]) + 1,
				del: data[i+2]&1 == 1,
			})
		}
		if len(ops) == 0 {
			return
		}
		o := igCurve(t)
		eng, err := engine.Open(t.TempDir(), o, igOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		p, err := New(o, fuzzTarget{e: eng, n: 3}, Config{Ring: 8, MaxBatch: 5})
		if err != nil {
			t.Fatal(err)
		}

		// Producers partitioned by key: per-key order is preserved, so the
		// final state must equal the log applied in order.
		ctx := context.Background()
		var wg sync.WaitGroup
		for w := 0; w < producers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, op := range ops {
					if int(o.Index(op.pt)%uint64(producers)) != w {
						continue
					}
					var err error
					if op.del {
						err = p.Delete(ctx, op.pt)
					} else {
						err = p.Put(ctx, op.pt, op.pay)
					}
					if err != nil {
						t.Errorf("producer %d: %v", w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		if err := p.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		// Oracle 1: brute-force map in log order.
		want := icFinal(o, ops)
		got := make(map[uint64]uint64)
		recs, _, err := eng.Query(o.Universe().Rect())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			got[o.Index(r.Point)] = r.Payload
		}
		if len(got) != len(want) {
			t.Fatalf("pipeline state has %d keys, oracle %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("key %d: pipeline %d, oracle %d", k, got[k], v)
			}
		}

		// Oracle 2: the same log through the synchronous path — query
		// results must be identical record for record.
		ref, err := engine.Open(t.TempDir(), o, igOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		igApplySerial(t, ref, ops)
		refRecs, _, err := ref.Query(o.Universe().Rect())
		if err != nil {
			t.Fatal(err)
		}
		if len(refRecs) != len(recs) {
			t.Fatalf("pipeline %d records, serial %d", len(recs), len(refRecs))
		}
		for i := range refRecs {
			if !refRecs[i].Point.Equal(recs[i].Point) || refRecs[i].Payload != recs[i].Payload {
				t.Fatalf("record %d: pipeline %+v, serial %+v", i, recs[i], refRecs[i])
			}
		}
	})
}
