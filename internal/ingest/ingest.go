// Package ingest is the asynchronous write front-end of the storage
// stack: a bounded lock-free MPMC ring accepting Put/Delete ops from any
// number of producers, feeding a striped batcher — one stripe per shard,
// routed by curve key — that coalesces ops into per-shard batches
// (last-write-wins per key, emitted in ascending curve-key order) and
// submits each batch through Engine.PutBatch, where the whole batch rides
// one WAL group-commit fsync. Acknowledgements fan back to the producers
// through per-op completion handles.
//
// Backpressure is the contract, not an accident: the ring is the only
// elastic buffer, its capacity is fixed at construction, and a full ring
// either rejects immediately (Try*, ErrBackpressure) or blocks the
// producer until space frees or its context cancels. Memory is bounded by
// ring capacity × op size plus at most three partial batches per stripe
// (one accumulating in the router, one in the handoff channel, one in the
// submitter).
//
// Ordering: ops enqueued by one producer are applied in that producer's
// order for any single key (ring FIFO → router FIFO → per-stripe FIFO →
// sequential batch submission). Ops on different keys from different
// producers have no mutual order, exactly like concurrent Put calls.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/telemetry"
)

var (
	// ErrBackpressure reports a non-blocking enqueue rejected because the
	// ring is full: the pipeline is shedding load instead of growing. The
	// producer decides — retry, drop, or switch to the blocking form.
	ErrBackpressure = errors.New("ingest: ring full (backpressure)")
	// ErrClosed reports an enqueue after Close, or a producer unblocked by
	// shutdown while waiting for ring space.
	ErrClosed = errors.New("ingest: pipeline closed")
)

// Target is the batch sink the pipeline drains into: a striped write
// surface where each stripe accepts curve-key-sorted batches
// independently. The sharded service maps stripes onto its shards; a
// single engine is one stripe.
type Target interface {
	// Stripes is the number of independent batch sinks.
	Stripes() int
	// StripeOf routes a curve key to its stripe. Must be constant for the
	// pipeline's lifetime.
	StripeOf(key uint64) int
	// ApplyBatch durably applies one coalesced batch to stripe i. Called
	// sequentially per stripe, concurrently across stripes. The ops slice
	// is reused after the call returns.
	ApplyBatch(i int, ops []engine.BatchOp) error
}

// Config tunes a Pipeline. The zero value selects the defaults.
type Config struct {
	// Ring is the MPMC ring capacity, rounded up to a power of two
	// (default 8192). The ring is the pipeline's entire elastic buffer:
	// this is the backpressure threshold and the memory bound.
	Ring int
	// MaxBatch caps how many ops one submitted batch may hold (default
	// 1024). Larger batches amortize the WAL fsync further at the cost of
	// per-op ack latency under sustained load.
	MaxBatch int
}

func (c Config) withDefaults() Config {
	if c.Ring <= 0 {
		c.Ring = 8192
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	return c
}

// op is one routed write in flight: the pre-computed curve key (routing
// and coalescing identity), the cloned point, and the completion handle.
type op struct {
	key uint64
	pt  geom.Point
	pay uint64
	del bool
	at  time.Time // enqueue time, for the ack-latency histogram
	h   *Handle
}

// Handle is the completion side of one enqueued op: Wait blocks until the
// op's batch commits (nil) or fails (the batch error), or ctx cancels.
// Each handle delivers exactly one outcome to exactly one waiter.
type Handle struct {
	ch chan error
}

// Wait blocks for the op's outcome. A ctx cancellation abandons the wait
// but not the op — it is still in flight and may commit.
func (h *Handle) Wait(ctx context.Context) error {
	select {
	case err := <-h.ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done exposes the outcome channel for select loops; receiving from it is
// equivalent to Wait.
func (h *Handle) Done() <-chan error { return h.ch }

// Pipeline is the async ingest front-end. All enqueue methods are safe
// for concurrent use; Close may run concurrently with waiters but not
// with enqueuers (stop producers first — any op racing past the final
// drain is completed with ErrClosed on a best-effort sweep).
type Pipeline struct {
	c      curve.Curve
	target Target
	cfg    Config
	ring   *ring

	reg *telemetry.Registry
	tel *ingestTelemetry

	pend     [][]op      // router-owned per-stripe accumulation
	handoff  []chan []op // router → per-stripe submitter, capacity 1
	batchBuf sync.Pool   // recycled []op batch buffers

	enqueued  atomic.Uint64
	completed atomic.Uint64
	doneSig   *signal // broadcast on completion progress, for Drain waiters

	closed  atomic.Bool
	stop    chan struct{}
	routerD chan struct{}
	workers sync.WaitGroup

	errMu    sync.Mutex
	firstErr error
}

// New builds and starts a pipeline clustered by c over the given target.
func New(c curve.Curve, target Target, cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	n := target.Stripes()
	if n < 1 {
		return nil, fmt.Errorf("ingest: target has %d stripes", n)
	}
	p := &Pipeline{
		c:       c,
		target:  target,
		cfg:     cfg,
		ring:    newRing(cfg.Ring),
		reg:     telemetry.NewRegistry(),
		pend:    make([][]op, n),
		handoff: make([]chan []op, n),
		stop:    make(chan struct{}),
		routerD: make(chan struct{}),
		doneSig: newSignal(),
	}
	p.batchBuf.New = func() any { return make([]op, 0, cfg.MaxBatch) }
	p.tel = newIngestTelemetry(p.reg)
	p.registerSampledTelemetry()
	for i := 0; i < n; i++ {
		p.pend[i] = p.batchBuf.Get().([]op)
		p.handoff[i] = make(chan []op, 1)
		p.workers.Add(1)
		go p.submitter(i)
	}
	go p.router()
	return p, nil
}

// NewEngine builds a pipeline over a single engine: one stripe, every
// batch through Engine.PutBatch.
func NewEngine(e *engine.Engine, cfg Config) (*Pipeline, error) {
	return New(e.Curve(), engineTarget{e}, cfg)
}

type engineTarget struct{ e *engine.Engine }

func (t engineTarget) Stripes() int                                 { return 1 }
func (t engineTarget) StripeOf(uint64) int                          { return 0 }
func (t engineTarget) ApplyBatch(_ int, ops []engine.BatchOp) error { return t.e.PutBatch(ops) }

// Put enqueues a put and blocks until it is acknowledged — batched,
// committed and durable under the target's WAL rules. Under backpressure
// it blocks for ring space; ctx bounds the whole wait.
func (p *Pipeline) Put(ctx context.Context, pt geom.Point, payload uint64) error {
	return p.putWait(ctx, pt, payload, false)
}

// Delete enqueues a tombstone and blocks until it is acknowledged.
func (p *Pipeline) Delete(ctx context.Context, pt geom.Point) error {
	return p.putWait(ctx, pt, 0, true)
}

func (p *Pipeline) putWait(ctx context.Context, pt geom.Point, payload uint64, del bool) error {
	h, err := p.enqueue(ctx, pt, payload, del, true)
	if err != nil {
		return err
	}
	select {
	case err := <-h.ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PutAsync enqueues a put (blocking for ring space; ctx bounds the wait)
// and returns immediately with the completion handle.
func (p *Pipeline) PutAsync(ctx context.Context, pt geom.Point, payload uint64) (*Handle, error) {
	return p.enqueue(ctx, pt, payload, false, true)
}

// DeleteAsync enqueues a tombstone asynchronously.
func (p *Pipeline) DeleteAsync(ctx context.Context, pt geom.Point) (*Handle, error) {
	return p.enqueue(ctx, pt, 0, true, true)
}

// TryPut enqueues a put without blocking: a full ring returns
// ErrBackpressure immediately — the open-loop load-shedding form.
func (p *Pipeline) TryPut(pt geom.Point, payload uint64) (*Handle, error) {
	return p.enqueue(context.Background(), pt, payload, false, false)
}

// TryDelete enqueues a tombstone without blocking.
func (p *Pipeline) TryDelete(pt geom.Point) (*Handle, error) {
	return p.enqueue(context.Background(), pt, 0, true, false)
}

func (p *Pipeline) enqueue(ctx context.Context, pt geom.Point, payload uint64, del, block bool) (*Handle, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if !p.c.Universe().Contains(pt) {
		return nil, fmt.Errorf("%w: %v in %v", engine.ErrPoint, pt, p.c.Universe())
	}
	o := op{
		key: p.c.Index(pt),
		pt:  pt.Clone(), // the caller may reuse pt the moment we return
		pay: payload,
		del: del,
		at:  time.Now(),
		h:   &Handle{ch: make(chan error, 1)},
	}
	if p.ring.tryEnqueue(o) {
		p.enqueued.Add(1)
		p.tel.enqueued.Inc()
		p.tel.enqueueWaitUS.Record(0)
		return o.h, nil
	}
	if !block {
		p.tel.rejects.Inc()
		return nil, ErrBackpressure
	}
	// Park until a slot frees: register as a waiter, arm the space
	// signal, re-try, and only then block. Arming before the re-try
	// closes the lost-wakeup window — a dequeue after our failed try
	// sees the waiter registration and broadcasts the armed generation.
	waitStart := time.Now()
	p.ring.space.waiters.Add(1)
	defer p.ring.space.waiters.Add(-1)
	for {
		wake := p.ring.space.arm()
		if p.closed.Load() {
			return nil, ErrClosed
		}
		if p.ring.tryEnqueue(o) {
			p.enqueued.Add(1)
			p.tel.enqueued.Inc()
			p.tel.enqueueWaitUS.Record(uint64(time.Since(waitStart).Microseconds()))
			return o.h, nil
		}
		select {
		case <-ctx.Done():
			p.tel.rejects.Inc()
			return nil, ctx.Err()
		case <-p.stop:
			return nil, ErrClosed
		case <-wake:
		}
	}
}

// router drains the ring in arrival order, accumulates ops into
// per-stripe pending buffers, and hands full batches to the stripe
// submitters. When the ring momentarily empties it flushes every partial
// batch — batching adapts to load exactly like the WAL group commit:
// deeper queues make bigger batches, an idle pipeline acks immediately.
func (p *Pipeline) router() {
	defer close(p.routerD)
	var o op
	for {
		for p.ring.tryDequeue(&o) {
			p.route(o)
		}
		p.flushPending()
		select {
		case <-p.stop:
			// Producers have stopped: drain whatever is left and exit.
			for p.ring.tryDequeue(&o) {
				p.route(o)
			}
			p.flushPending()
			return
		case <-p.ring.items:
		}
	}
}

func (p *Pipeline) route(o op) {
	st := p.target.StripeOf(o.key)
	p.pend[st] = append(p.pend[st], o)
	if len(p.pend[st]) >= p.cfg.MaxBatch {
		p.dispatch(st)
	}
}

func (p *Pipeline) flushPending() {
	for st := range p.pend {
		if len(p.pend[st]) > 0 {
			p.dispatch(st)
		}
	}
}

// dispatch hands stripe st's pending batch to its submitter, blocking if
// one batch is already queued behind the in-flight one — that is the
// point where ring backpressure starts building toward the producers.
func (p *Pipeline) dispatch(st int) {
	batch := p.pend[st]
	p.pend[st] = p.batchBuf.Get().([]op)[:0]
	p.handoff[st] <- batch
}

// submitter runs stripe st's batches sequentially: coalesce, sort, one
// ApplyBatch, fan the outcome back to every handle in the batch —
// including the ops coalesced away, which the surviving newest op
// subsumes.
func (p *Pipeline) submitter(st int) {
	defer p.workers.Done()
	var ops []engine.BatchOp
	for batch := range p.handoff[st] {
		ops = p.runBatch(batch, ops)
		p.batchBuf.Put(batch[:0])
	}
}

func (p *Pipeline) runBatch(batch []op, ops []engine.BatchOp) []engine.BatchOp {
	// Stable sort by curve key: equal keys keep arrival order, so "the
	// last op wins" below is last in producer order; distinct keys come
	// out in curve order, which is exactly the order the memtable and a
	// future flush want them in.
	slices.SortStableFunc(batch, func(a, b op) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	ops = ops[:0]
	coalesced := 0
	for i := range batch {
		if i+1 < len(batch) && batch[i+1].key == batch[i].key {
			coalesced++ // superseded by a newer op on the same key
			continue
		}
		ops = append(ops, engine.BatchOp{Point: batch[i].pt, Payload: batch[i].pay, Del: batch[i].del})
	}
	err := p.target.ApplyBatch(p.target.StripeOf(batch[0].key), ops)
	if err != nil {
		p.noteErr(err)
	}
	now := time.Now()
	for i := range batch {
		batch[i].h.ch <- err
		p.tel.ackLatencyUS.Record(uint64(now.Sub(batch[i].at).Microseconds()))
		batch[i] = op{} // release the point and handle
	}
	p.completed.Add(uint64(len(batch)))
	p.doneSig.notify()
	tel := p.tel
	tel.batches.Inc()
	tel.batchOps.Record(uint64(len(batch)))
	tel.coalesced.Add(uint64(coalesced))
	if err != nil {
		tel.ackErrors.Add(uint64(len(batch)))
	} else {
		tel.acked.Add(uint64(len(batch)))
	}
	return ops
}

func (p *Pipeline) noteErr(err error) {
	p.errMu.Lock()
	if p.firstErr == nil {
		p.firstErr = err
	}
	p.errMu.Unlock()
}

// Err returns the first batch-apply error the pipeline has seen (sticky;
// nil while every batch has committed). Individual outcomes travel on the
// handles — this is the cheap service-level health probe.
func (p *Pipeline) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.firstErr
}

// Drain blocks until every op enqueued so far has been acknowledged (or
// failed). It is a quiescence barrier: meaningful only once concurrent
// producers have stopped, since later enqueues extend the goal.
func (p *Pipeline) Drain(ctx context.Context) error {
	p.doneSig.waiters.Add(1)
	defer p.doneSig.waiters.Add(-1)
	for {
		wake := p.doneSig.arm()
		if p.completed.Load() >= p.enqueued.Load() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-wake:
		}
	}
}

// QueueDepth approximates how many ops are waiting in the ring right now.
func (p *Pipeline) QueueDepth() int { return p.ring.len() }

// Close stops the pipeline: new enqueues fail with ErrClosed, everything
// already accepted is drained, batched and submitted, every outstanding
// handle is completed, and the stripe submitters exit. Close returns the
// first batch-apply error of the pipeline's lifetime (Err), so a fully
// clean run closes nil. Producers must stop before Close; an enqueue
// racing past the final drain is completed with ErrClosed best-effort.
func (p *Pipeline) Close() error {
	if p.closed.Swap(true) {
		return ErrClosed
	}
	close(p.stop)
	<-p.routerD
	for st := range p.handoff {
		close(p.handoff[st])
	}
	p.workers.Wait()
	// Best-effort sweep for enqueue-after-drain stragglers: nothing will
	// ever consume them, so fail their handles rather than strand a
	// waiter.
	var o op
	for p.ring.tryDequeue(&o) {
		o.h.ch <- ErrClosed
		p.completed.Add(1)
	}
	p.doneSig.notify()
	return p.Err()
}
