package ingest

import (
	"github.com/onioncurve/onion/internal/telemetry"
)

// ingestTelemetry holds pre-resolved handles into the pipeline's own
// metric registry — the front-end series that exist above any one engine:
// queue pressure, batching shape, ack latency. Storage-side metrics (WAL
// bytes, group-commit batch sizes) stay in the target engines' registries.
type ingestTelemetry struct {
	enqueued      *telemetry.Counter
	acked         *telemetry.Counter
	ackErrors     *telemetry.Counter
	rejects       *telemetry.Counter
	batches       *telemetry.Counter
	coalesced     *telemetry.Counter
	batchOps      *telemetry.Histogram
	enqueueWaitUS *telemetry.Histogram
	ackLatencyUS  *telemetry.Histogram
}

func newIngestTelemetry(reg *telemetry.Registry) *ingestTelemetry {
	return &ingestTelemetry{
		enqueued:      reg.Counter("ingest_enqueued_total"),
		acked:         reg.Counter("ingest_acked_total"),
		ackErrors:     reg.Counter("ingest_ack_errors_total"),
		rejects:       reg.Counter("ingest_backpressure_rejects_total"),
		batches:       reg.Counter("ingest_batches_total"),
		coalesced:     reg.Counter("ingest_coalesced_total"),
		batchOps:      reg.Histogram("ingest_batch_ops"),
		enqueueWaitUS: reg.Histogram("ingest_enqueue_wait_us"),
		ackLatencyUS:  reg.Histogram("ingest_ack_latency_us"),
	}
}

// registerSampledTelemetry wires the series read on demand at snapshot
// time: live queue depth, in-flight op count, and the fixed ring bound
// (so a dashboard can plot depth against capacity without configuration).
func (p *Pipeline) registerSampledTelemetry() {
	p.reg.GaugeFunc("ingest_queue_depth", func() int64 { return int64(p.ring.len()) })
	p.reg.GaugeFunc("ingest_ring_capacity", func() int64 { return int64(p.ring.cap()) })
	p.reg.GaugeFunc("ingest_inflight_ops", func() int64 {
		d := int64(p.enqueued.Load()) - int64(p.completed.Load())
		if d < 0 {
			d = 0
		}
		return d
	})
}

// Telemetry returns the pipeline's metric registry: the ingest_* series.
func (p *Pipeline) Telemetry() *telemetry.Registry { return p.reg }
