// Package workload generates the query workloads of the paper's
// experimental study (Section VII): random squares and cubes of fixed side
// (VII-A), rectangles with a fixed ratio of side lengths via Algorithm 1
// (VII-B), and rectangles with random end points (VII-C). All generators
// are deterministic given a seed.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/onioncurve/onion/internal/geom"
)

var (
	// ErrShape reports an invalid query shape for the universe.
	ErrShape = errors.New("workload: shape does not fit universe")
	// ErrCount reports a non-positive sample count.
	ErrCount = errors.New("workload: count must be positive")
	// ErrRatio reports a non-positive side ratio.
	ErrRatio = errors.New("workload: ratio must be positive")
)

// RandomTranslates returns count random translates of the given shape
// inside u: the lower corner is chosen uniformly among all feasible
// positions, exactly as in Section VII-A.
func RandomTranslates(u geom.Universe, shape []uint32, count int, seed int64) ([]geom.Rect, error) {
	if count <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrCount, count)
	}
	if len(shape) != u.Dims() {
		return nil, fmt.Errorf("%w: %v in %v", ErrShape, shape, u)
	}
	for _, l := range shape {
		if l == 0 || l > u.Side() {
			return nil, fmt.Errorf("%w: %v in %v", ErrShape, shape, u)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, 0, count)
	lo := make(geom.Point, u.Dims())
	for i := 0; i < count; i++ {
		for d := 0; d < u.Dims(); d++ {
			lo[d] = uint32(rng.Int63n(int64(u.Side()-shape[d]) + 1))
		}
		r, err := geom.RectAt(lo, shape)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Figure5Sides2D returns the square sides of Figure 5a:
// l = side - 50k for k in {1, 3, 5, ..., 19} (side = 2^10 in the paper).
func Figure5Sides2D(side uint32) []uint32 {
	var out []uint32
	for k := uint32(1); k <= 19; k += 2 {
		if 50*k < side {
			out = append(out, side-50*k)
		}
	}
	return out
}

// Figure5Sides3D returns the cube sides of Figure 5b (for the paper's
// 2^9 = 512 universe): {472, 432, 192, 152, 112, 72, 32}, clipped to the
// actual side.
func Figure5Sides3D(side uint32) []uint32 {
	var out []uint32
	for _, l := range []uint32{472, 432, 192, 152, 112, 72, 32} {
		if l < side {
			out = append(out, l)
		}
	}
	return out
}

// Figure6Ratios returns the side ratios of Figure 6:
// {1/1024, 1/512, 1/4, 1/2, 3/4, 1, 4/3, 2, 4, 512, 1024}.
func Figure6Ratios() []float64 {
	return []float64{1.0 / 1024, 1.0 / 512, 0.25, 0.5, 0.75, 1, 4.0 / 3, 2, 4, 512, 1024}
}

// FixedRatio implements Algorithm 1 generalized to d dimensions: l_last
// sweeps from the universe side down in steps of `step`; the remaining
// sides are floor(l_last / rho); whenever the resulting shape fits, perStep
// uniform translates are sampled. For d = 2 this is exactly the paper's
// Algorithm 1 (step 50, perStep 20).
func FixedRatio(u geom.Universe, rho float64, step uint32, perStep int, seed int64) ([]geom.Rect, error) {
	if rho <= 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return nil, fmt.Errorf("%w: %v", ErrRatio, rho)
	}
	if perStep <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrCount, perStep)
	}
	if step == 0 {
		step = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var out []geom.Rect
	d := u.Dims()
	shape := make([]uint32, d)
	lo := make(geom.Point, d)
	for l2 := u.Side(); ; l2 -= step {
		l1f := math.Floor(float64(l2) / rho)
		if l1f >= 1 && l1f <= float64(u.Side()) {
			l1 := uint32(l1f)
			for i := 0; i < d-1; i++ {
				shape[i] = l1
			}
			shape[d-1] = l2
			for i := 0; i < perStep; i++ {
				for dim := 0; dim < d; dim++ {
					lo[dim] = uint32(rng.Int63n(int64(u.Side()-shape[dim]) + 1))
				}
				r, err := geom.RectAt(lo, shape)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
		}
		if l2 <= step {
			break
		}
	}
	return out, nil
}

// RandomCorners returns count rectangles built from two independently
// uniform corner cells, taking the smallest rectangle containing both
// (Section VII-C).
func RandomCorners(u geom.Universe, count int, seed int64) ([]geom.Rect, error) {
	if count <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrCount, count)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, 0, count)
	d := u.Dims()
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for i := 0; i < count; i++ {
		for dim := 0; dim < d; dim++ {
			a := uint32(rng.Int63n(int64(u.Side())))
			b := uint32(rng.Int63n(int64(u.Side())))
			if a > b {
				a, b = b, a
			}
			lo[dim], hi[dim] = a, b
		}
		r, err := geom.NewRect(lo, hi)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ClusteredPoints synthesizes a point data set drawn from a mixture of
// Gaussian-ish clusters plus uniform background noise — the shape of
// spatial data the paper's indexing motivation targets. Points may repeat.
func ClusteredPoints(u geom.Universe, clusters, total int, seed int64) ([]geom.Point, error) {
	if clusters <= 0 || total <= 0 {
		return nil, fmt.Errorf("%w: clusters=%d total=%d", ErrCount, clusters, total)
	}
	rng := rand.New(rand.NewSource(seed))
	d := u.Dims()
	centers := make([][]float64, clusters)
	for i := range centers {
		centers[i] = make([]float64, d)
		for dim := 0; dim < d; dim++ {
			centers[i][dim] = rng.Float64() * float64(u.Side())
		}
	}
	sigma := float64(u.Side()) / 20
	out := make([]geom.Point, 0, total)
	for i := 0; i < total; i++ {
		p := make(geom.Point, d)
		if rng.Float64() < 0.1 { // background noise
			for dim := 0; dim < d; dim++ {
				p[dim] = uint32(rng.Int63n(int64(u.Side())))
			}
		} else {
			c := centers[rng.Intn(clusters)]
			for dim := 0; dim < d; dim++ {
				v := c[dim] + rng.NormFloat64()*sigma
				if v < 0 {
					v = 0
				}
				if v > float64(u.Side()-1) {
					v = float64(u.Side() - 1)
				}
				p[dim] = uint32(v)
			}
		}
		out = append(out, p)
	}
	return out, nil
}
