package workload

import (
	"errors"
	"testing"

	"github.com/onioncurve/onion/internal/geom"
)

func TestRandomTranslates(t *testing.T) {
	u := geom.MustUniverse(2, 64)
	qs, err := RandomTranslates(u, []uint32{10, 20}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 100 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if !q.In(u) {
			t.Fatalf("query %v outside universe", q)
		}
		if q.Side(0) != 10 || q.Side(1) != 20 {
			t.Fatalf("query %v has wrong shape", q)
		}
	}
}

func TestRandomTranslatesDeterminism(t *testing.T) {
	u := geom.MustUniverse(3, 32)
	a, _ := RandomTranslates(u, []uint32{4, 4, 4}, 50, 7)
	b, _ := RandomTranslates(u, []uint32{4, 4, 4}, 50, 7)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different workloads")
		}
	}
	c, _ := RandomTranslates(u, []uint32{4, 4, 4}, 50, 8)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestRandomTranslatesFullSizeQuery(t *testing.T) {
	u := geom.MustUniverse(2, 16)
	qs, err := RandomTranslates(u, []uint32{16, 16}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if !q.Equal(u.Rect()) {
			t.Fatalf("full-size translate %v != universe", q)
		}
	}
}

func TestRandomTranslatesErrors(t *testing.T) {
	u := geom.MustUniverse(2, 16)
	if _, err := RandomTranslates(u, []uint32{17, 4}, 5, 1); !errors.Is(err, ErrShape) {
		t.Error("oversized shape accepted")
	}
	if _, err := RandomTranslates(u, []uint32{4}, 5, 1); !errors.Is(err, ErrShape) {
		t.Error("wrong dims accepted")
	}
	if _, err := RandomTranslates(u, []uint32{4, 4}, 0, 1); !errors.Is(err, ErrCount) {
		t.Error("zero count accepted")
	}
}

func TestFigure5Sides(t *testing.T) {
	got := Figure5Sides2D(1024)
	want := []uint32{974, 874, 774, 674, 574, 474, 374, 274, 174, 74}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	got3 := Figure5Sides3D(512)
	want3 := []uint32{472, 432, 192, 152, 112, 72, 32}
	for i := range want3 {
		if got3[i] != want3[i] {
			t.Fatalf("3D sides: got %v", got3)
		}
	}
	// Clipping for small universes.
	if sides := Figure5Sides3D(128); len(sides) != 3 { // 112, 72, 32
		t.Fatalf("clipped 3D sides = %v", sides)
	}
	if sides := Figure5Sides2D(100); len(sides) != 1 { // only 50*1 < 100
		t.Fatalf("clipped 2D sides = %v", sides)
	}
}

func TestFigure6Ratios(t *testing.T) {
	rs := Figure6Ratios()
	if len(rs) != 11 {
		t.Fatalf("%d ratios", len(rs))
	}
	if rs[0] != 1.0/1024 || rs[5] != 1 || rs[10] != 1024 {
		t.Fatalf("ratios = %v", rs)
	}
}

func TestFixedRatioSquare(t *testing.T) {
	u := geom.MustUniverse(2, 256)
	qs, err := FixedRatio(u, 1.0, 50, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	// l2 takes values 256, 206, 156, 106, 56, 6 -> 6 steps x 20 samples.
	if len(qs) != 120 {
		t.Fatalf("got %d queries, want 120", len(qs))
	}
	for _, q := range qs {
		if !q.In(u) {
			t.Fatalf("query %v outside", q)
		}
		if q.Side(0) != q.Side(1) {
			t.Fatalf("ratio-1 query %v not square", q)
		}
	}
}

func TestFixedRatioWide(t *testing.T) {
	u := geom.MustUniverse(2, 256)
	// rho = 4: l1 = l2/4.
	qs, err := FixedRatio(u, 4.0, 50, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		want := uint32(q.Side(1) / 4)
		if q.Side(0) != want {
			t.Fatalf("query %v: l1 = %d, want %d", q, q.Side(0), want)
		}
	}
	// rho = 1/4: l1 = 4*l2 must be <= side, so only small l2 qualify.
	qs, err = FixedRatio(u, 0.25, 50, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("no queries for rho=1/4")
	}
	for _, q := range qs {
		if q.Side(0) != 4*q.Side(1) {
			t.Fatalf("query %v has wrong ratio", q)
		}
	}
}

func TestFixedRatioExtremeRatios(t *testing.T) {
	u := geom.MustUniverse(2, 1024)
	// rho = 1024: only l2 = 1024 yields l1 = 1.
	qs, err := FixedRatio(u, 1024, 50, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 20 {
		t.Fatalf("rho=1024: got %d queries, want 20", len(qs))
	}
	for _, q := range qs {
		if q.Side(0) != 1 || q.Side(1) != 1024 {
			t.Fatalf("rho=1024 query %v", q)
		}
	}
	if _, err := FixedRatio(u, 0, 50, 20, 3); !errors.Is(err, ErrRatio) {
		t.Error("rho=0 accepted")
	}
	if _, err := FixedRatio(u, 1, 50, 0, 3); !errors.Is(err, ErrCount) {
		t.Error("perStep=0 accepted")
	}
}

func TestFixedRatio3D(t *testing.T) {
	u := geom.MustUniverse(3, 128)
	qs, err := FixedRatio(u, 2.0, 32, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("no 3D queries")
	}
	for _, q := range qs {
		if q.Side(0) != q.Side(1) {
			t.Fatalf("3D query %v: first two sides differ", q)
		}
		if q.Side(0) != uint32(q.Side(2)/2) {
			t.Fatalf("3D query %v: ratio wrong", q)
		}
	}
}

func TestRandomCorners(t *testing.T) {
	u := geom.MustUniverse(2, 100)
	qs, err := RandomCorners(u, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 500 {
		t.Fatal("count")
	}
	varied := false
	for _, q := range qs {
		if !q.In(u) {
			t.Fatalf("query %v outside", q)
		}
		if q.Side(0) != q.Side(1) {
			varied = true
		}
	}
	if !varied {
		t.Error("all random-corner rects are square — suspicious")
	}
	if _, err := RandomCorners(u, -1, 4); !errors.Is(err, ErrCount) {
		t.Error("negative count accepted")
	}
}

func TestClusteredPoints(t *testing.T) {
	u := geom.MustUniverse(2, 1000)
	ps, err := ClusteredPoints(u, 5, 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2000 {
		t.Fatal("count")
	}
	for _, p := range ps {
		if !u.Contains(p) {
			t.Fatalf("point %v outside", p)
		}
	}
	// Clustered data should be far from uniform: the occupied-cell count
	// of a coarse 10x10 binning should be well below 100.
	bins := map[[2]uint32]int{}
	for _, p := range ps {
		bins[[2]uint32{p[0] / 100, p[1] / 100}]++
	}
	maxBin := 0
	for _, c := range bins {
		if c > maxBin {
			maxBin = c
		}
	}
	if maxBin < 80 { // uniform would put ~20 per bin
		t.Errorf("max bin %d too small for clustered data", maxBin)
	}
	if _, err := ClusteredPoints(u, 0, 10, 1); !errors.Is(err, ErrCount) {
		t.Error("zero clusters accepted")
	}
}
