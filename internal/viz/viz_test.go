package viz

import (
	"errors"
	"strings"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
)

func TestCurveGridFigure3(t *testing.T) {
	o, _ := core.NewOnion2D(4)
	got, err := CurveGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3's 4x4 onion order, printed with y increasing upward.
	want := strings.Join([]string{
		" 9  8  7  6",
		"10 15 14  5",
		"11 12 13  4",
		" 0  1  2  3",
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("grid:\n%s\nwant:\n%s", got, want)
	}
}

func TestCurveGrid2x2(t *testing.T) {
	o, _ := core.NewOnion2D(2)
	got, err := CurveGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	want := "3 2\n0 1\n"
	if got != want {
		t.Fatalf("grid:\n%q", got)
	}
}

func TestCurveGridErrors(t *testing.T) {
	o3, _ := core.NewOnion3D(4)
	if _, err := CurveGrid(o3); !errors.Is(err, ErrDims) {
		t.Error("3D grid accepted")
	}
	big, _ := core.NewOnion2D(128)
	if _, err := CurveGrid(big); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized grid accepted")
	}
}

func TestQueryClusters(t *testing.T) {
	z, _ := baseline.NewMorton(2, 4)
	r := geom.Rect{Lo: geom.Point{1, 1}, Hi: geom.Point{2, 2}}
	pic, n, err := QueryClusters(z, r)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("clusters = %d, want 4 (Figure 1)", n)
	}
	// Four singleton clusters -> letters a..d each appearing once.
	for _, ch := range []string{"a", "b", "c", "d"} {
		if strings.Count(pic, ch) != 1 {
			t.Fatalf("picture:\n%s\nletter %s count != 1", pic, ch)
		}
	}
	if strings.Count(pic, ".") != 12 {
		t.Fatalf("picture:\n%s\nwrong number of outside cells", pic)
	}
}

func TestQueryClustersWholeUniverse(t *testing.T) {
	o, _ := core.NewOnion2D(4)
	pic, n, err := QueryClusters(o, o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("whole universe clusters = %d", n)
	}
	if strings.Contains(pic, ".") {
		t.Fatal("whole universe should have no outside cells")
	}
	if strings.Count(pic, "a") != 16 {
		t.Fatalf("picture:\n%s", pic)
	}
}

func TestQueryClustersErrors(t *testing.T) {
	o3, _ := core.NewOnion3D(4)
	if _, _, err := QueryClusters(o3, geom.Rect{Lo: geom.Point{0, 0, 0}, Hi: geom.Point{1, 1, 1}}); !errors.Is(err, ErrDims) {
		t.Error("3D accepted")
	}
}

func TestLetterCycles(t *testing.T) {
	if letter(0) != 'a' || letter(25) != 'z' || letter(26) != 'A' {
		t.Fatal("letter mapping")
	}
	if letter(52) != 'a' {
		t.Fatal("letter cycling")
	}
}

func TestCurveSlices(t *testing.T) {
	o3, _ := core.NewOnion3D(4)
	out, err := CurveSlices(o3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "z = 0:") || !strings.Contains(out, "z = 3:") {
		t.Fatalf("missing slices:\n%s", out)
	}
	if !strings.Contains(out, "63") {
		t.Fatal("missing last index")
	}
	o2, _ := core.NewOnion2D(4)
	if _, err := CurveSlices(o2); !errors.Is(err, ErrDims) {
		t.Error("2D accepted by CurveSlices")
	}
	big, _ := core.NewOnion3D(16)
	if _, err := CurveSlices(big); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized accepted")
	}
}

func TestLayerMap(t *testing.T) {
	u := geom.MustUniverse(3, 4)
	out, err := LayerMap(u)
	if err != nil {
		t.Fatal(err)
	}
	// Outer slice is all layer 0; inner slices have 1s in the middle.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "z = 0") {
		t.Fatalf("first line %q", lines[0])
	}
	if !strings.Contains(out, "0 1 1 0") {
		t.Fatalf("inner layer not visible:\n%s", out)
	}
	u2 := geom.MustUniverse(2, 4)
	if _, err := LayerMap(u2); !errors.Is(err, ErrDims) {
		t.Error("2D accepted by LayerMap")
	}
}
