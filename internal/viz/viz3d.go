package viz

import (
	"fmt"
	"strings"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// CurveSlices renders a 3D curve as a sequence of z-slices, each a grid of
// position numbers (Figure 4 territory: it makes the layer structure of
// the 3D onion curve visible in a terminal).
func CurveSlices(c curve.Curve) (string, error) {
	u := c.Universe()
	if u.Dims() != 3 {
		return "", fmt.Errorf("%w (got %dD)", ErrDims, u.Dims())
	}
	if u.Side() > 8 {
		return "", fmt.Errorf("%w (side %d)", ErrTooLarge, u.Side())
	}
	width := len(fmt.Sprint(u.Size() - 1))
	var b strings.Builder
	p := make(geom.Point, 3)
	for z := uint32(0); z < u.Side(); z++ {
		fmt.Fprintf(&b, "z = %d:\n", z)
		for y := int(u.Side()) - 1; y >= 0; y-- {
			for x := uint32(0); x < u.Side(); x++ {
				p[0], p[1], p[2] = x, uint32(y), z
				if x > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%*d", width, c.Index(p))
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// LayerMap renders, for each z-slice of a 3D onion-family curve, the layer
// number of every cell — the onion-shell picture of the paper's Figure 4a.
func LayerMap(u geom.Universe) (string, error) {
	if u.Dims() != 3 {
		return "", fmt.Errorf("%w (got %dD)", ErrDims, u.Dims())
	}
	if u.Side() > 16 {
		return "", fmt.Errorf("%w (side %d)", ErrTooLarge, u.Side())
	}
	s := u.Side()
	layer := func(x, y, z uint32) uint32 {
		t := x
		for _, v := range []uint32{s - 1 - x, y, s - 1 - y, z, s - 1 - z} {
			if v < t {
				t = v
			}
		}
		return t
	}
	var b strings.Builder
	for z := uint32(0); z < s; z++ {
		fmt.Fprintf(&b, "z = %d:\n", z)
		for y := int(s) - 1; y >= 0; y-- {
			for x := uint32(0); x < s; x++ {
				if x > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%d", layer(x, uint32(y), z))
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
