// Package viz renders small universes as ASCII art: the numbered curve
// orders of the paper's Figure 3 and the per-query cluster pictures of
// Figures 1 and 2.
package viz

import (
	"errors"
	"fmt"
	"strings"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
)

// ErrTooLarge reports a universe too big to draw.
var ErrTooLarge = errors.New("viz: universe too large to render")

// ErrDims reports a non-2D universe (only 2D renders are supported).
var ErrDims = errors.New("viz: only two-dimensional universes can be rendered")

// CurveGrid renders the curve's position numbers in a grid, y increasing
// upward (row y = side-1 printed first), like the paper's Figure 3.
func CurveGrid(c curve.Curve) (string, error) {
	u := c.Universe()
	if u.Dims() != 2 {
		return "", fmt.Errorf("%w (got %dD)", ErrDims, u.Dims())
	}
	if u.Side() > 64 {
		return "", fmt.Errorf("%w (side %d)", ErrTooLarge, u.Side())
	}
	width := len(fmt.Sprint(u.Size() - 1))
	var b strings.Builder
	p := make(geom.Point, 2)
	for y := int(u.Side()) - 1; y >= 0; y-- {
		for x := uint32(0); x < u.Side(); x++ {
			p[0], p[1] = x, uint32(y)
			if x > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%*d", width, c.Index(p))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// QueryClusters renders the universe with '.' for cells outside the query
// and a cluster letter (a, b, c, ... in curve order) for cells inside, as
// in Figures 1 and 2. The cluster count is len of the decomposition.
func QueryClusters(c curve.Curve, r geom.Rect) (string, int, error) {
	u := c.Universe()
	if u.Dims() != 2 {
		return "", 0, fmt.Errorf("%w (got %dD)", ErrDims, u.Dims())
	}
	if u.Side() > 64 {
		return "", 0, fmt.Errorf("%w (side %d)", ErrTooLarge, u.Side())
	}
	rs, err := ranges.Decompose(c, r, 0)
	if err != nil {
		return "", 0, fmt.Errorf("viz: %w", err)
	}
	clusterOf := func(h uint64) (int, bool) {
		for i, kr := range rs {
			if h >= kr.Lo && h <= kr.Hi {
				return i, true
			}
		}
		return 0, false
	}
	var b strings.Builder
	p := make(geom.Point, 2)
	for y := int(u.Side()) - 1; y >= 0; y-- {
		for x := uint32(0); x < u.Side(); x++ {
			p[0], p[1] = x, uint32(y)
			if x > 0 {
				b.WriteByte(' ')
			}
			if i, ok := clusterOf(c.Index(p)); ok {
				b.WriteByte(letter(i))
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String(), len(rs), nil
}

// letter maps cluster ordinals to display characters, cycling after 52.
func letter(i int) byte {
	const alpha = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return alpha[i%len(alpha)]
}
