package partition

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/workload"
)

func TestUniformBasics(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	p, err := Uniform(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 4 {
		t.Fatal("shards")
	}
	if p.Of(0) != 0 {
		t.Fatal("first key shard")
	}
	if p.Of(255) != 3 {
		t.Fatal("last key shard")
	}
	// Every key maps to exactly one shard, non-decreasing.
	prev := 0
	for k := uint64(0); k < 256; k++ {
		s := p.Of(k)
		if s < prev || s >= 4 {
			t.Fatalf("key %d -> shard %d after %d", k, s, prev)
		}
		prev = s
	}
	if _, err := Uniform(o, 0); !errors.Is(err, ErrParts) {
		t.Error("k=0 accepted")
	}
}

func TestUniformBalance(t *testing.T) {
	o, _ := core.NewOnion2D(32)
	p, _ := Uniform(o, 8)
	counts := make([]int, 8)
	for k := uint64(0); k < o.Universe().Size(); k++ {
		counts[p.Of(k)]++
	}
	for i, c := range counts {
		if c != 128 {
			t.Fatalf("shard %d has %d keys, want 128", i, c)
		}
	}
}

func TestOfPoint(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	p, _ := Uniform(o, 4)
	pt := geom.Point{3, 5}
	if p.OfPoint(pt) != p.Of(o.Index(pt)) {
		t.Fatal("OfPoint disagrees with Of(Index)")
	}
}

func TestByWeightBalance(t *testing.T) {
	u := geom.MustUniverse(2, 256)
	o, _ := core.NewOnion2D(256)
	pts, err := workload.ClusteredPoints(u, 3, 20000, 13)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, len(pts))
	for i, pt := range pts {
		keys[i] = o.Index(pt)
	}
	k := 8
	bal, err := ByWeight(o, keys, k)
	if err != nil {
		t.Fatal(err)
	}
	loads := bal.Loads(keys)
	maxLoad := 0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	ideal := len(keys) / k
	if maxLoad > ideal*2 {
		t.Errorf("weighted partitioning badly skewed: max load %d vs ideal %d", maxLoad, ideal)
	}
	// Uniform partitioning on the same skewed data must be worse or equal.
	uni, _ := Uniform(o, k)
	uniMax := 0
	for _, l := range uni.Loads(keys) {
		if l > uniMax {
			uniMax = l
		}
	}
	if uniMax < maxLoad {
		t.Errorf("uniform (%d) beat weighted (%d) on skewed data — suspicious", uniMax, maxLoad)
	}
}

func TestByWeightEmptyFallsBack(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	p, err := ByWeight(o, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 4 {
		t.Fatal("fallback shards")
	}
	if _, err := ByWeight(o, []uint64{1}, 0); !errors.Is(err, ErrParts) {
		t.Error("k=0 accepted")
	}
}

func TestByWeightSkewedDuplicates(t *testing.T) {
	// All sample keys identical: quantile bounds collapse; shards must
	// stay legal (non-decreasing bounds) and all keys land in one shard.
	o, _ := core.NewOnion2D(16)
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = 42
	}
	p, err := ByWeight(o, keys, 5)
	if err != nil {
		t.Fatal(err)
	}
	loads := p.Loads(keys)
	total := 0
	nonEmpty := 0
	for _, l := range loads {
		total += l
		if l > 0 {
			nonEmpty++
		}
	}
	if total != 100 || nonEmpty != 1 {
		t.Fatalf("loads = %v", loads)
	}
}

func TestFanOutWholeUniverse(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	p, _ := Uniform(o, 4)
	fo, err := p.FanOut(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if fo != 4 {
		t.Fatalf("whole-universe fan-out = %d, want 4", fo)
	}
}

func TestFanOutSingleCell(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	p, _ := Uniform(o, 4)
	fo, err := p.FanOut(geom.Rect{Lo: geom.Point{7, 7}, Hi: geom.Point{7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if fo != 1 {
		t.Fatalf("single-cell fan-out = %d", fo)
	}
}

// TestFanOutMatchesBruteForce verifies FanOut against per-cell shard
// enumeration for several curves and shard counts.
func TestFanOutMatchesBruteForce(t *testing.T) {
	side := uint32(16)
	o, _ := core.NewOnion2D(side)
	z, _ := baseline.NewMorton(2, side)
	h, _ := baseline.NewHilbert(2, side)
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		c curve.Curve
		k int
	}{{o, 5}, {z, 7}, {h, 4}, {o, 1}, {h, 16}} {
		part, err := Uniform(tc.c, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			lo := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
			hi := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
			for i := range lo {
				if lo[i] > hi[i] {
					lo[i], hi[i] = hi[i], lo[i]
				}
			}
			r := geom.Rect{Lo: lo, Hi: hi}
			want := map[int]struct{}{}
			r.ForEach(func(p geom.Point) bool {
				want[part.OfPoint(p)] = struct{}{}
				return true
			})
			got, err := part.FanOut(r)
			if err != nil {
				t.Fatal(err)
			}
			if got != len(want) {
				t.Fatalf("%s k=%d: fan-out %d, brute force %d on %v",
					tc.c.Name(), tc.k, got, len(want), r)
			}
		}
	}
}

// TestInterval: every key must lie inside the interval of the shard that
// owns it, intervals must tile the key space in order, and empty shards
// (quantile boundaries that coincide) must report ok = false.
func TestInterval(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	for _, k := range []int{1, 2, 3, 7, 16} {
		p, err := Uniform(o, k)
		if err != nil {
			t.Fatal(err)
		}
		next := uint64(0)
		for i := 0; i < p.Shards(); i++ {
			iv, ok := p.Interval(i)
			if !ok {
				continue
			}
			if iv.Lo != next {
				t.Fatalf("k=%d shard %d: interval %v, expected to start at %d", k, i, iv, next)
			}
			if p.Of(iv.Lo) != i || p.Of(iv.Hi) != i {
				t.Fatalf("k=%d shard %d: interval %v not owned by its shard", k, i, iv)
			}
			next = iv.Hi + 1
		}
		if n := o.Universe().Size(); next != n {
			t.Fatalf("k=%d: intervals end at %d, want %d", k, next, n)
		}
	}
	// Out-of-range shards and empty quantile shards.
	p4, err := Uniform(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p4.Interval(-1); ok {
		t.Fatal("Interval(-1) ok")
	}
	if _, ok := p4.Interval(4); ok {
		t.Fatal("Interval(shards) ok")
	}
	skew := make([]uint64, 32) // all samples at key 0 => coinciding bounds
	bw, err := ByWeight(o, skew, 8)
	if err != nil {
		t.Fatal(err)
	}
	empties := 0
	for i := 0; i < bw.Shards(); i++ {
		if _, ok := bw.Interval(i); !ok {
			empties++
		}
	}
	if empties == 0 {
		t.Fatal("expected empty shards from a degenerate quantile sample")
	}
}
