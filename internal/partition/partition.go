// Package partition splits the key space of a space filling curve into
// contiguous shards — the distributed-partitioning / load-balancing
// application the paper's introduction motivates (Aydin et al., Warren &
// Salmon). A rectangular query's fan-out is the number of shards it
// touches; curves with better clustering touch fewer shards.
package partition

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
)

// ErrParts reports an invalid shard count.
var ErrParts = errors.New("partition: shard count must be >= 1")

// Partitioner maps curve keys to shards. Shard i owns keys in
// [bounds[i], bounds[i+1]).
type Partitioner struct {
	c      curve.Curve
	bounds []uint64 // len = shards+1; bounds[0] = 0, bounds[k] = Size()
}

// Uniform splits the key space into k equal-size shards.
func Uniform(c curve.Curve, k int) (*Partitioner, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrParts, k)
	}
	n := c.Universe().Size()
	bounds := make([]uint64, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = uint64(float64(n) * float64(i) / float64(k))
	}
	bounds[k] = n
	return &Partitioner{c: c, bounds: bounds}, nil
}

// ByWeight splits the key space into k shards of (near) equal data volume
// for the given sample of curve keys — range partitioning by quantiles, as
// a distributed spatial store would provision shards.
func ByWeight(c curve.Curve, keys []uint64, k int) (*Partitioner, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrParts, k)
	}
	if len(keys) == 0 {
		return Uniform(c, k)
	}
	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	n := c.Universe().Size()
	bounds := make([]uint64, k+1)
	bounds[0] = 0
	for i := 1; i < k; i++ {
		idx := len(sorted) * i / k
		bounds[i] = sorted[idx]
	}
	bounds[k] = n
	// Quantile boundaries of skewed data may coincide; keep them
	// non-decreasing (empty shards are legal).
	for i := 1; i <= k; i++ {
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	return &Partitioner{c: c, bounds: bounds}, nil
}

// Shards returns the number of shards.
func (p *Partitioner) Shards() int { return len(p.bounds) - 1 }

// Interval returns the inclusive key range shard i owns. ok is false for
// an empty shard (coinciding quantile boundaries, or more shards than
// keys): no key routes to it and its range is meaningless.
func (p *Partitioner) Interval(i int) (kr curve.KeyRange, ok bool) {
	if i < 0 || i >= p.Shards() || p.bounds[i] == p.bounds[i+1] {
		return curve.KeyRange{}, false
	}
	return curve.KeyRange{Lo: p.bounds[i], Hi: p.bounds[i+1] - 1}, true
}

// Of returns the shard owning the given key.
func (p *Partitioner) Of(key uint64) int {
	// First bound strictly greater than key, minus one.
	i := sort.Search(len(p.bounds), func(i int) bool { return p.bounds[i] > key })
	if i == 0 {
		return 0
	}
	s := i - 1
	if s >= p.Shards() {
		s = p.Shards() - 1
	}
	return s
}

// OfPoint returns the shard owning the given cell.
func (p *Partitioner) OfPoint(pt geom.Point) int {
	return p.Of(p.c.Index(pt))
}

// FanOut returns the number of distinct shards a rectangular query
// touches: the shards overlapped by its cluster ranges.
func (p *Partitioner) FanOut(r geom.Rect) (int, error) {
	rs, err := ranges.Decompose(p.c, r, 0)
	if err != nil {
		return 0, fmt.Errorf("partition: %w", err)
	}
	touched := make(map[int]struct{})
	for _, kr := range rs {
		for s := p.Of(kr.Lo); s <= p.Of(kr.Hi); s++ {
			if p.bounds[s] == p.bounds[s+1] {
				continue // empty shard cannot own any key of the range
			}
			touched[s] = struct{}{}
		}
	}
	return len(touched), nil
}

// Loads returns, for a sample of keys, how many fall into each shard — the
// balance a load balancer would see.
func (p *Partitioner) Loads(keys []uint64) []int {
	loads := make([]int, p.Shards())
	for _, k := range keys {
		loads[p.Of(k)]++
	}
	return loads
}
