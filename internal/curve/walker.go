package curve

import (
	"fmt"

	"github.com/onioncurve/onion/internal/geom"
)

// Walker enumerates the cells of a curve in increasing key order. Where a
// scalar Coords call must re-solve the curve's inverse mapping from scratch
// (ring quadratics, layer searches, bit transforms), a Walker carries the
// decoded position across steps, so whole-curve sweeps — the paper's
// Figure 5 clustering averages walk every edge of a 10^8-cell universe —
// pay amortized O(1) (onion family, Morton, Gray, linear orders) or one
// bit-transform (Hilbert) per step instead of a full inversion.
type Walker interface {
	// Next returns the key and cell of the current position and advances.
	// ok is false once the curve is exhausted. The returned Point is
	// reused by subsequent calls; clone it if it must be retained.
	Next() (h uint64, p geom.Point, ok bool)
}

// WalkerProvider is implemented by curves with a specialized incremental
// walker. Walk returns a Walker positioned at key start (start == Size()
// yields an exhausted walker; start > Size() panics).
type WalkerProvider interface {
	Walk(start uint64) Walker
}

// NewWalker returns a Walker over c seeded at key start. Curves
// implementing WalkerProvider supply an incremental implementation; any
// other curve gets a generic fallback that evaluates Coords once per step.
func NewWalker(c Curve, start uint64) Walker {
	n := c.Universe().Size()
	if start > n {
		panic(fmt.Sprintf("curve %s: walker start %d beyond universe %v", c.Name(), start, c.Universe()))
	}
	if wp, ok := c.(WalkerProvider); ok {
		return wp.Walk(start)
	}
	return &coordsWalker{c: c, h: start, n: n, p: make(geom.Point, c.Universe().Dims())}
}

// coordsWalker is the generic fallback: one scalar Coords call per step.
type coordsWalker struct {
	c    Curve
	h, n uint64
	p    geom.Point
}

func (w *coordsWalker) Next() (uint64, geom.Point, bool) {
	if w.h >= w.n {
		return 0, nil, false
	}
	h := w.h
	w.h++
	return h, w.c.Coords(h, w.p), true
}

// RunVisitor is implemented by curves whose edge structure decomposes into
// axis-aligned straight runs (the onion rings, the rows of the linear
// orders). It lets whole-curve analytics such as the exact average
// clustering sweep process an entire run in O(1) via per-axis prefix sums
// instead of visiting its edges one by one.
type RunVisitor interface {
	// VisitRuns enumerates the curve edges (h, h+1) for h in [lo, hi), in
	// curve order, as a mix of straight runs and irregular edges:
	//
	//   - run(start, dim, dir, edges) reports `edges` consecutive curve
	//     edges that each move the cell by dir (+1 or -1) along dimension
	//     dim, beginning at cell start. edges >= 1.
	//   - edge(a, b) reports a single curve edge from cell a to cell b
	//     that is not part of a straight run (a discontinuous jump or a
	//     direction change handled cell-wise).
	//
	// Points passed to the callbacks are reused; callers must not retain
	// them. hi must not exceed Size()-1.
	VisitRuns(lo, hi uint64, run func(start geom.Point, dim, dir int, edges uint64), edge func(a, b geom.Point))
}
