package curve

import "github.com/onioncurve/onion/internal/geom"

// Batch evaluation of the curve mappings. The batch entry points amortize
// interface dispatch and validation over many cells and allocate nothing
// when the caller supplies correctly sized destinations, which is what the
// bulk loaders, sorters and clustering counters need on their hot paths.

// IndexBatcher is implemented by curves with a specialized batch forward
// mapping. IndexBatch must behave exactly like len(pts) scalar Index calls
// (including panicking on invalid points) and must not allocate.
type IndexBatcher interface {
	IndexBatch(pts []geom.Point, dst []uint64)
}

// CoordsBatcher is the inverse-direction analogue of IndexBatcher. Each
// dst[i] is guaranteed to have the universe's dimensionality.
type CoordsBatcher interface {
	CoordsBatch(keys []uint64, dst []geom.Point)
}

// IndexBatch maps pts[i] to dst[i] = c.Index(pts[i]) for all i. If dst has
// length len(pts) it is filled in place and no allocation occurs; otherwise
// a fresh slice is returned. Curves implementing IndexBatcher supply a
// fast path; the fallback performs scalar calls.
func IndexBatch(c Curve, pts []geom.Point, dst []uint64) []uint64 {
	if len(dst) != len(pts) {
		dst = make([]uint64, len(pts))
	}
	if b, ok := c.(IndexBatcher); ok {
		b.IndexBatch(pts, dst)
		return dst
	}
	for i, p := range pts {
		dst[i] = c.Index(p)
	}
	return dst
}

// CoordsBatch maps keys[i] to dst[i] = c.Coords(keys[i], ...) for all i.
// dst elements of the right dimensionality are filled in place; a dst of
// the right length with correctly sized points incurs zero allocations.
// Missing or misshapen entries are replaced, backed by a single flat
// allocation.
func CoordsBatch(c Curve, keys []uint64, dst []geom.Point) []geom.Point {
	dims := c.Universe().Dims()
	if len(dst) != len(keys) {
		dst = make([]geom.Point, len(keys))
	}
	missing := 0
	for i := range dst {
		if len(dst[i]) != dims {
			missing++
		}
	}
	if missing > 0 {
		flat := make([]uint32, missing*dims)
		for i := range dst {
			if len(dst[i]) != dims {
				dst[i] = geom.Point(flat[:dims:dims])
				flat = flat[dims:]
			}
		}
	}
	if b, ok := c.(CoordsBatcher); ok {
		b.CoordsBatch(keys, dst)
		return dst
	}
	for i, h := range keys {
		dst[i] = c.Coords(h, dst[i])
	}
	return dst
}
