// Package curve defines the space filling curve (SFC) abstraction shared by
// the onion curve and every baseline curve in this repository, plus the bit
// manipulation utilities (Morton interleaving, Gray codes) that the
// power-of-two curves are built from.
//
// In the paper's model an SFC pi over a universe U of n cells is a bijection
// pi : U -> {0, ..., n-1}. Curve.Index is pi and Curve.Coords is pi^-1.
package curve

import (
	"errors"
	"fmt"

	"github.com/onioncurve/onion/internal/geom"
)

// ErrSideUnsupported reports a side length a curve cannot fill (for example
// a non power of two side for the Hilbert curve, or an odd side for the
// paper's three-dimensional onion curve).
var ErrSideUnsupported = errors.New("curve: unsupported universe side for this curve")

// Curve is a bijection between the cells of a d-dimensional universe and
// the key range [0, Size()).
//
// Index panics if p is not a valid cell of the universe, and Coords panics
// if h >= Universe().Size(); both conditions are programmer errors,
// analogous to slice index violations.
type Curve interface {
	// Name returns a short stable identifier such as "onion" or "hilbert".
	Name() string
	// Universe returns the grid the curve fills.
	Universe() geom.Universe
	// Index maps a cell to its position along the curve.
	Index(p geom.Point) uint64
	// Coords maps a position back to its cell. If dst has the right
	// length it is filled and returned without allocating; otherwise a
	// fresh Point is returned.
	Coords(h uint64, dst geom.Point) geom.Point
}

// continuity is implemented by curves that know whether consecutive cells
// along the curve are always grid neighbors (the paper's Definition 1).
type continuity interface {
	Continuous() bool
}

// IsContinuous reports whether c declares itself continuous in the sense of
// Definition 1: pi^-1(i) and pi^-1(i+1) are neighboring cells for all i.
// Curves that do not implement the marker are treated as discontinuous.
func IsContinuous(c Curve) bool {
	if m, ok := c.(continuity); ok {
		return m.Continuous()
	}
	return false
}

// Base carries the universe and name shared by curve implementations and
// provides the standard validation helpers.
type Base struct {
	U    geom.Universe
	Id   string
	Cont bool
}

// Name implements Curve.
func (b Base) Name() string { return b.Id }

// Universe implements Curve.
func (b Base) Universe() geom.Universe { return b.U }

// Continuous reports the continuity flag recorded at construction.
func (b Base) Continuous() bool { return b.Cont }

// CheckPoint panics unless p is a valid cell of the universe.
func (b Base) CheckPoint(p geom.Point) {
	if !b.U.Contains(p) {
		panic(fmt.Sprintf("curve %s: point %v outside universe %v", b.Id, p, b.U))
	}
}

// CheckIndex panics unless h < Size().
func (b Base) CheckIndex(h uint64) {
	if h >= b.U.Size() {
		panic(fmt.Sprintf("curve %s: index %d outside universe %v", b.Id, h, b.U))
	}
}

// Dst returns dst if it has length dims, else a fresh point.
func Dst(dst geom.Point, dims int) geom.Point {
	if len(dst) == dims {
		return dst
	}
	return make(geom.Point, dims)
}

// PowerOfTwoOrder returns k such that side == 2^k, or an error if side is
// not a power of two (required by Hilbert, Z and Gray-code curves).
func PowerOfTwoOrder(side uint32) (int, error) {
	if side == 0 || side&(side-1) != 0 {
		return 0, fmt.Errorf("%w: side %d is not a power of two", ErrSideUnsupported, side)
	}
	k := 0
	for s := side; s > 1; s >>= 1 {
		k++
	}
	return k, nil
}
