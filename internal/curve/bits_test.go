package curve

import (
	"testing"
	"testing/quick"
)

// referenceInterleave is the obviously-correct bit loop used as oracle.
func referenceInterleave(p []uint32, order, dims int) uint64 {
	var key uint64
	for j := 0; j < order; j++ {
		for i := 0; i < dims; i++ {
			key |= uint64((p[i]>>uint(j))&1) << uint(j*dims+i)
		}
	}
	return key
}

func TestInterleave2Known(t *testing.T) {
	// x=0b11, y=0b01 -> bits: y1 x1 y0 x0 = 0 1 1 1 = 0b0111.
	if got := Interleave([]uint32{3, 1}, 2, 2); got != 0b0111 {
		t.Fatalf("got %b", got)
	}
	// x=0, y=3 -> 0b1010.
	if got := Interleave([]uint32{0, 3}, 2, 2); got != 0b1010 {
		t.Fatalf("got %b", got)
	}
}

func TestInterleave3Known(t *testing.T) {
	// x=1,y=0,z=0 -> bit0. z=1 -> bit2.
	if got := Interleave([]uint32{1, 0, 0}, 1, 3); got != 1 {
		t.Fatalf("got %d", got)
	}
	if got := Interleave([]uint32{0, 0, 1}, 1, 3); got != 4 {
		t.Fatalf("got %d", got)
	}
}

func TestInterleaveMatchesReference(t *testing.T) {
	f := func(x, y uint32) bool {
		got := Interleave([]uint32{x, y}, 32, 2)
		return got == referenceInterleave([]uint32{x, y}, 32, 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(x, y, z uint32) bool {
		p := []uint32{x & 0x1fffff, y & 0x1fffff, z & 0x1fffff}
		return Interleave(p, 21, 3) == referenceInterleave(p, 21, 3)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	for _, dims := range []int{2, 3, 4, 5} {
		order := 62 / dims
		if order > 32 {
			order = 32
		}
		mask := uint32(1)<<uint(order) - 1
		if order >= 32 {
			mask = ^uint32(0)
		}
		f := func(vals [5]uint32) bool {
			p := make([]uint32, dims)
			for i := range p {
				p[i] = vals[i] & mask
			}
			key := Interleave(p, order, dims)
			out := make([]uint32, dims)
			Deinterleave(key, order, dims, out)
			for i := range p {
				if out[i] != p[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("dims %d: %v", dims, err)
		}
	}
}

func TestGrayRoundTrip(t *testing.T) {
	if Gray(0) != 0 || Gray(1) != 1 || Gray(2) != 3 || Gray(3) != 2 {
		t.Fatal("gray code table wrong")
	}
	f := func(v uint64) bool { return GrayInverse(Gray(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrayAdjacency(t *testing.T) {
	// Consecutive Gray codes differ in exactly one bit.
	for v := uint64(0); v < 4096; v++ {
		x := Gray(v) ^ Gray(v+1)
		if x == 0 || x&(x-1) != 0 {
			t.Fatalf("gray(%d) and gray(%d) differ in %b", v, v+1, x)
		}
	}
}

func TestPowerOfTwoOrder(t *testing.T) {
	for _, tc := range []struct {
		side uint32
		k    int
		ok   bool
	}{
		{1, 0, true}, {2, 1, true}, {1024, 10, true}, {1 << 20, 20, true},
		{0, 0, false}, {3, 0, false}, {12, 0, false},
	} {
		k, err := PowerOfTwoOrder(tc.side)
		if tc.ok && (err != nil || k != tc.k) {
			t.Errorf("PowerOfTwoOrder(%d) = %d, %v", tc.side, k, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("PowerOfTwoOrder(%d) accepted", tc.side)
		}
	}
}

func TestIsqrtExact(t *testing.T) {
	for x := uint64(0); x < 1<<16; x++ {
		r := Isqrt(x)
		if r*r > x || (r+1)*(r+1) <= x {
			t.Fatalf("Isqrt(%d) = %d", x, r)
		}
	}
	for _, x := range []uint64{1 << 62, 1<<62 - 1, 1<<62 + 1, (1 << 31) * (1 << 31), (1<<31-1)*(1<<31-1) + 1, ^uint64(0)} {
		r := Isqrt(x)
		if r*r > x {
			t.Fatalf("Isqrt(%d) = %d: square exceeds x", x, r)
		}
		if r+1 <= 0xFFFFFFFF && (r+1)*(r+1) <= x {
			t.Fatalf("Isqrt(%d) = %d: not maximal", x, r)
		}
	}
}

func TestIcbrtExact(t *testing.T) {
	for x := uint64(0); x < 1<<16; x++ {
		r := Icbrt(x)
		if r*r*r > x || (r+1)*(r+1)*(r+1) <= x {
			t.Fatalf("Icbrt(%d) = %d", x, r)
		}
	}
	for _, x := range []uint64{1 << 62, 1<<62 - 1, 1<<62 + 1, 1 << 63, ^uint64(0), 2642245 * 2642245 * 2642245} {
		r := Icbrt(x)
		if r*r*r > x {
			t.Fatalf("Icbrt(%d) = %d: cube exceeds x", x, r)
		}
		if r+1 <= 2642245 && (r+1)*(r+1)*(r+1) <= x {
			t.Fatalf("Icbrt(%d) = %d: not maximal", x, r)
		}
	}
}
