package curve

// Bit-interleaving (Morton) and Gray code primitives, plus exact integer
// root helpers. These are the building blocks of the Z curve, the Gray-code
// curve and the Hilbert curve key packing, and of the onion curves' exact
// ring/layer inversion. All bit routines operate on "order" bits per
// dimension and "dims" dimensions; the produced keys use order*dims low
// bits.

import "math/bits"

// Interleave packs the low `order` bits of each coordinate into a Morton
// key. Bit j of dimension i lands at key bit j*dims + i, so dimension 0 is
// the least significant within each bit group and higher bits of the
// coordinates are more significant in the key.
func Interleave(p []uint32, order int, dims int) uint64 {
	if dims == 2 {
		return interleave2(uint64(p[0]), uint64(p[1]))
	}
	if dims == 3 && order <= 21 {
		return interleave3(uint64(p[0]), uint64(p[1]), uint64(p[2]))
	}
	var key uint64
	for j := 0; j < order; j++ {
		for i := 0; i < dims; i++ {
			bit := uint64(p[i]>>uint(j)) & 1
			key |= bit << uint(j*dims+i)
		}
	}
	return key
}

// Deinterleave is the inverse of Interleave; it writes the coordinates into
// dst which must have length dims.
func Deinterleave(key uint64, order int, dims int, dst []uint32) {
	if dims == 2 {
		dst[0] = uint32(compact2(key))
		dst[1] = uint32(compact2(key >> 1))
		return
	}
	if dims == 3 && order <= 21 {
		dst[0] = uint32(compact3(key))
		dst[1] = uint32(compact3(key >> 1))
		dst[2] = uint32(compact3(key >> 2))
		return
	}
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < order; j++ {
		for i := 0; i < dims; i++ {
			bit := (key >> uint(j*dims+i)) & 1
			dst[i] |= uint32(bit) << uint(j)
		}
	}
}

// interleave2 spreads the low 32 bits of x into even key bits, y into odd.
func interleave2(x, y uint64) uint64 {
	return spread2(x) | spread2(y)<<1
}

func spread2(v uint64) uint64 {
	v &= 0xffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

func compact2(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return v
}

// interleave3 spreads the low 21 bits of each coordinate.
func interleave3(x, y, z uint64) uint64 {
	return spread3(x) | spread3(y)<<1 | spread3(z)<<2
}

func spread3(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

func compact3(v uint64) uint64 {
	v &= 0x1249249249249249
	v = (v | v>>2) & 0x10c30c30c30c30c3
	v = (v | v>>4) & 0x100f00f00f00f00f
	v = (v | v>>8) & 0x1f0000ff0000ff
	v = (v | v>>16) & 0x1f00000000ffff
	v = (v | v>>32) & 0x1fffff
	return v
}

// Isqrt returns floor(sqrt(x)) computed entirely in integer arithmetic
// (a Newton iteration seeded from the bit length), so curve inversions that
// solve quadratics need no floating point and no fix-up loops.
func Isqrt(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	r := uint64(1) << uint((bits.Len64(x)+1)/2) // r >= sqrt(x)
	for {
		nr := (r + x/r) / 2
		if nr >= r {
			break
		}
		r = nr
	}
	// Newton from above lands on floor(sqrt(x)) exactly, but keep the
	// invariant explicit: r*r <= x < (r+1)*(r+1).
	for r*r > x {
		r--
	}
	// (r+1)^2 cannot overflow below 2^32-1, and floor(sqrt(x)) <= 2^32-1
	// for every uint64 x, so the guard never blocks a needed increment.
	for r+1 <= 0xFFFFFFFF && (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// Icbrt returns floor(cbrt(x)), the cubic analogue of Isqrt used by the 3D
// onion curve's layer inversion.
func Icbrt(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	r := uint64(1) << uint((bits.Len64(x)+2)/3) // r >= cbrt(x)
	for {
		nr := (2*r + x/(r*r)) / 3
		if nr >= r {
			break
		}
		r = nr
	}
	for r*r*r > x {
		r--
	}
	// floor(cbrt(2^64-1)) = 2642245; the guard keeps (r+1)^3 in range.
	const maxCbrt = 2642245
	for r+1 <= maxCbrt && (r+1)*(r+1)*(r+1) <= x {
		r++
	}
	return r
}

// Gray returns the binary-reflected Gray code of v.
func Gray(v uint64) uint64 { return v ^ (v >> 1) }

// GrayInverse decodes a binary-reflected Gray code.
func GrayInverse(g uint64) uint64 {
	g ^= g >> 32
	g ^= g >> 16
	g ^= g >> 8
	g ^= g >> 4
	g ^= g >> 2
	g ^= g >> 1
	return g
}
