package curve

import (
	"fmt"

	"github.com/onioncurve/onion/internal/geom"
)

// KeyRange is an inclusive range [Lo, Hi] of curve positions. A rectangle
// query's minimal KeyRanges are its clusters: one sequential scan per range
// answers the query, so len(ranges) equals the paper's clustering number.
type KeyRange struct {
	Lo, Hi uint64
}

// Cells returns the number of keys covered by the range.
func (k KeyRange) Cells() uint64 { return k.Hi - k.Lo + 1 }

// String renders the range as "[lo,hi]".
func (k KeyRange) String() string { return fmt.Sprintf("[%d,%d]", k.Lo, k.Hi) }

// RangePlanner is the output-sensitive range decomposition capability:
// curves that can decompose a rectangle query into its minimal key ranges
// analytically — per onion ring/layer intersection, prefix-tree descent, or
// row-run arithmetic — without evaluating the forward mapping cell by cell
// or sweeping the query surface.
//
// Contract: r must lie fully inside the curve's universe (callers such as
// ranges.Decompose and cluster.Count validate before dispatching; planners
// may panic or misbehave on an out-of-universe rectangle). DecomposeRect
// returns the minimal sorted disjoint non-adjacent ranges covering exactly
// the cells of r — bit-identical to what sorting every cell's key would
// produce — and ClusterCount returns len(DecomposeRect(r)) without
// materializing the ranges.
type RangePlanner interface {
	DecomposeRect(r geom.Rect) []KeyRange
	ClusterCount(r geom.Rect) uint64
}

// RangeAppender is the buffer-reusing form of RangePlanner: the planner
// appends the decomposition into dst (truncated to length zero first) and
// returns the possibly regrown slice, so a steady-state caller that
// recycles the same plan buffer allocates nothing per query. Every
// RangePlanner in this module also implements RangeAppender;
// DecomposeRectAppend(r, nil) is exactly DecomposeRect(r).
type RangeAppender interface {
	DecomposeRectAppend(r geom.Rect, dst []KeyRange) []KeyRange
}

// RangeEmitter accumulates key ranges produced in ascending key order,
// merging ranges that touch (lo == previous hi + 1) so the result is
// minimal. Planners share one plan routine between DecomposeRect (collect
// mode) and ClusterCount (count-only mode, no allocation).
type RangeEmitter struct {
	// Ranges is the collected, merged output (collect mode only).
	Ranges []KeyRange

	count     uint64
	lastHi    uint64
	has       bool
	countOnly bool
}

// NewRangeCounter returns an emitter that only counts merged ranges.
func NewRangeCounter() *RangeEmitter { return &RangeEmitter{countOnly: true} }

// Emit appends the inclusive range [lo, hi], merging it into the previous
// range when adjacent. Calls must arrive in ascending, non-overlapping key
// order (lo of each call strictly greater than the previous hi).
func (e *RangeEmitter) Emit(lo, hi uint64) {
	if e.has && lo == e.lastHi+1 {
		e.lastHi = hi
		if !e.countOnly {
			e.Ranges[len(e.Ranges)-1].Hi = hi
		}
		return
	}
	e.has = true
	e.lastHi = hi
	e.count++
	if !e.countOnly {
		e.Ranges = append(e.Ranges, KeyRange{Lo: lo, Hi: hi})
	}
}

// Count returns the number of merged ranges emitted so far.
func (e *RangeEmitter) Count() uint64 { return e.count }
