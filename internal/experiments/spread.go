package experiments

import (
	"fmt"

	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/metrics"
	"github.com/onioncurve/onion/internal/stats"
	"github.com/onioncurve/onion/internal/workload"
)

// SpreadRow summarizes the inter-cluster layout per curve and query size.
type SpreadRow struct {
	L           uint32
	Curve       string
	AvgClusters float64
	AvgGapCells float64
	AvgSpanFrac float64 // span / key-space size
	StretchK1   float64 // mean grid distance of consecutive curve steps
}

// SpreadExp measures the metric the paper's conclusion explicitly defers:
// "the distance between different clusters of the same query region, which
// tends to be important in fetching data from the disk". The onion curve
// wins on cluster count but pays key-space spread on small off-center
// queries; the table quantifies both sides.
func SpreadExp(cfg Config) ([]SpreadRow, error) {
	cfg = cfg.withDefaults()
	side := uint32(256)
	samples := 50
	if cfg.Quick {
		side = 64
		samples = 15
	}
	cs, err := allCurves2D(side)
	if err != nil {
		return nil, err
	}
	cs = cs[:3] // onion, hilbert, z
	u := geom.MustUniverse(2, side)
	n := float64(u.Size())
	var rows []SpreadRow
	for i, l := range []uint32{side / 16, side / 4, side - side/8} {
		qs, err := workload.RandomTranslates(u, []uint32{l, l}, samples, cfg.Seed+700+int64(i))
		if err != nil {
			return nil, err
		}
		for _, c := range cs {
			row := SpreadRow{L: l, Curve: c.Name()}
			for _, q := range qs {
				sp, err := metrics.ClusterSpread(c, q)
				if err != nil {
					return nil, err
				}
				row.AvgClusters += float64(sp.Clusters)
				row.AvgGapCells += float64(sp.GapCells)
				row.AvgSpanFrac += float64(sp.Span) / n
			}
			fn := float64(len(qs))
			row.AvgClusters /= fn
			row.AvgGapCells /= fn
			row.AvgSpanFrac /= fn
			st, err := metrics.Stretch(c, 1, 2000, cfg.Seed+800)
			if err != nil {
				return nil, err
			}
			row.StretchK1 = st.Mean
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderSpread renders the spread experiment.
func RenderSpread(rows []SpreadRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.L), r.Curve,
			fmt.Sprintf("%.1f", r.AvgClusters),
			fmt.Sprintf("%.0f", r.AvgGapCells),
			fmt.Sprintf("%.3f", r.AvgSpanFrac),
			fmt.Sprintf("%.2f", r.StretchK1),
		})
	}
	return "Inter-cluster spread (the paper's future-work metric) and k=1 stretch\n" +
		stats.FormatTable([]string{"l", "curve", "avg clusters", "avg gap cells", "avg span frac", "stretch k=1"}, out)
}
