package experiments

import (
	"strings"
	"testing"
)

var quickCfg = Config{Quick: true, Seed: 42, Side2D: 64, Side3D: 16, Samples2D: 12, Samples3D: 6}

func TestFig1(t *testing.T) {
	out, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hilbert: clustering number 2") {
		t.Errorf("Fig1 output missing hilbert count:\n%s", out)
	}
	if !strings.Contains(out, "zcurve: clustering number 4") {
		t.Errorf("Fig1 output missing z count:\n%s", out)
	}
}

func TestFig2(t *testing.T) {
	rows, err := Fig2(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// For the near-full query (l = side-1) the onion curve must beat
	// Hilbert decisively at every side.
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Curve+string(rune(r.Side))+string(rune(r.L))] = r.Average
	}
	for _, r := range rows {
		if r.Curve != "onion" || r.L < r.Side-1 {
			continue
		}
		h := byKey["hilbert"+string(rune(r.Side))+string(rune(r.L))]
		if h <= r.Average {
			t.Errorf("side %d l %d: hilbert %.2f should exceed onion %.2f", r.Side, r.L, h, r.Average)
		}
	}
	out := RenderFig2(rows)
	if !strings.Contains(out, "7x7 query") {
		t.Error("render missing picture")
	}
}

func TestFig5a(t *testing.T) {
	rows, err := Fig5a(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Paper: "for each side length considered, the onion curve performed
	// at least as well as the Hilbert curve" (on means, within noise).
	onion := map[string]float64{}
	for _, r := range rows {
		if r.Curve == "onion" {
			onion[r.Group] = r.Summary.Mean
		}
	}
	for _, r := range rows {
		if r.Curve == "hilbert" {
			if o := onion[r.Group]; o > r.Summary.Mean*1.1+1 {
				t.Errorf("group %s: onion mean %.2f worse than hilbert %.2f", r.Group, o, r.Summary.Mean)
			}
		}
	}
	out := RenderDistRows("fig5a", rows)
	if !strings.Contains(out, "median") {
		t.Error("render missing header")
	}
}

func TestFig5b(t *testing.T) {
	rows, err := Fig5b(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Summary.Count == 0 || r.Summary.Min < 1 {
			t.Errorf("row %+v implausible", r)
		}
	}
}

func TestFig6(t *testing.T) {
	rows, err := Fig6a(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no 2D rows")
	}
	rows3, err := Fig6b(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows3) == 0 {
		t.Fatal("no 3D rows")
	}
}

func TestFig7(t *testing.T) {
	rows, err := Fig7a(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // onion + hilbert
		t.Fatalf("fig7a rows = %d", len(rows))
	}
	rows3, err := Fig7b(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows3) != 2 {
		t.Fatalf("fig7b rows = %d", len(rows3))
	}
}

func TestTable1(t *testing.T) {
	out, rows, err := Table1(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2.32") || !strings.Contains(out, "3.39") {
		t.Errorf("Table 1 missing analytic maxima:\n%s", out)
	}
	// Hilbert's near-full-cube average must grow with the side; onion's
	// must stay bounded.
	var prevH, prevO float64
	for _, r := range rows {
		if r.Dims != 2 {
			continue
		}
		if prevH > 0 && r.HilbertAvg < prevH*1.5 {
			t.Errorf("hilbert 2D not growing: %.2f after %.2f", r.HilbertAvg, prevH)
		}
		if prevO > 0 && r.OnionAvg > prevO*1.5+1 {
			t.Errorf("onion 2D growing: %.2f after %.2f", r.OnionAvg, prevO)
		}
		prevH, prevO = r.HilbertAvg, r.OnionAvg
	}
}

func TestTable2(t *testing.T) {
	out := Table2()
	if !strings.Contains(out, "mu = 0") || !strings.Contains(out, "Omega") {
		t.Errorf("Table 2 output:\n%s", out)
	}
}

func TestLemma5(t *testing.T) {
	rows, err := Lemma5(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2D Hilbert growth rate should approach 2x per side doubling.
	var last2 float64
	for _, r := range rows {
		if r.Dims == 2 && r.HilbertRate > 0 {
			last2 = r.HilbertRate
		}
	}
	if last2 < 1.6 || last2 > 2.6 {
		t.Errorf("2D hilbert growth rate %.2f not near 2x", last2)
	}
	out := RenderLemma5(rows)
	if !strings.Contains(out, "hilbert growth") {
		t.Error("render")
	}
}

func TestThm1(t *testing.T) {
	rows, err := Thm1(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		dev := r.Measured - r.Predicted
		if dev < 0 {
			dev = -dev
		}
		if dev > r.Eps {
			t.Errorf("query %dx%d: deviation %.3f exceeds eps %.0f", r.L1, r.L2, dev, r.Eps)
		}
	}
	if !strings.Contains(RenderThm1(rows), "deviation") {
		t.Error("render")
	}
}

func TestLowerBounds(t *testing.T) {
	rows, err := LowerBounds(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"onion", "hilbert", "zcurve", "graycode", "snake", "rowmajor"}
	for _, r := range rows {
		for name, v := range r.Measured {
			if v < r.LBGeneral-1e-9 {
				t.Errorf("shape %s: %s measured %.3f below general LB %.3f", r.Shape, name, v, r.LBGeneral)
			}
		}
		for _, cont := range []string{"onion", "hilbert", "snake"} {
			if v := r.Measured[cont]; v < r.LBContinuous-1e-9 {
				t.Errorf("shape %s: %s measured %.3f below continuous LB %.3f", r.Shape, cont, v, r.LBContinuous)
			}
		}
	}
	if !strings.Contains(RenderLowerBounds(rows, names), "LB-cont") {
		t.Error("render")
	}
}

func TestSeeks(t *testing.T) {
	rows, err := Seeks(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AvgSeeks > r.AvgRanges {
			t.Errorf("%s: seeks %.2f exceed ranges %.2f", r.Curve, r.AvgSeeks, r.AvgRanges)
		}
		if r.AvgBudgetCost > r.AvgCostMs+1e-9 && r.AvgRanges > 8 {
			t.Errorf("%s: budget cost %.2f above exact cost %.2f", r.Curve, r.AvgBudgetCost, r.AvgCostMs)
		}
	}
	if !strings.Contains(RenderSeeks(rows), "cost ms") {
		t.Error("render")
	}
}

func TestFanout(t *testing.T) {
	rows, err := Fanout(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AvgFanout < 1 || r.AvgFanout > float64(r.Shards) {
			t.Errorf("%s: fan-out %.2f out of range", r.Curve, r.AvgFanout)
		}
	}
	if !strings.Contains(RenderFanout(rows), "fan-out") {
		t.Error("render")
	}
}

func TestAblation(t *testing.T) {
	rows, err := Ablation(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	var maxL uint32
	for _, r := range rows {
		if r.L > maxL {
			maxL = r.L
		}
	}
	vals := map[string]float64{}
	for _, r := range rows {
		if r.L == maxL {
			vals[r.Curve] = r.Mean
		}
	}
	// Paper's proven claim: permuting S1..S10 is immaterial.
	if vals["onion-perm"] > vals["onion"]*1.5+2 || vals["onion"] > vals["onion-perm"]*1.5+2 {
		t.Errorf("segment permutation changed clustering: %.2f vs %.2f",
			vals["onion"], vals["onion-perm"])
	}
	// Both paper variants must beat Hilbert decisively on the largest cubes.
	for _, fam := range []string{"onion", "onion-perm"} {
		if vals[fam] >= vals["hilbert"] {
			t.Errorf("%s mean %.2f not better than hilbert %.2f at l=%d",
				fam, vals[fam], vals["hilbert"], maxL)
		}
	}
	// The degraded within-segment orders stay layer-sequential but lose
	// the constant: they must be clearly worse than the paper's curve.
	for _, fam := range []string{"onionnd", "layerlex"} {
		if vals[fam] <= vals["onion"] {
			t.Errorf("%s mean %.2f unexpectedly as good as the paper's onion %.2f",
				fam, vals[fam], vals["onion"])
		}
	}
	if !strings.Contains(RenderAblation(rows), "layer") {
		t.Error("render")
	}
}

func TestCountAutoAgreesAcrossStrategies(t *testing.T) {
	// Smoke check that CountAuto picks working strategies for each family.
	cfg := quickCfg
	rows, err := Fig5b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Side2D != 1024 || c.Side3D != 512 || c.Samples2D != 1000 || c.Samples3D != 500 {
		t.Fatalf("full defaults = %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if q.Side2D != 256 || q.Side3D != 64 {
		t.Fatalf("quick defaults = %+v", q)
	}
}

func TestCSVRenderers(t *testing.T) {
	rows, err := Fig7a(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	out := DistRowsCSV(rows)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(rows)+1)
	}
	if !strings.HasPrefix(lines[0], "group,curve,n,min") {
		t.Fatalf("csv header = %q", lines[0])
	}
	l5, err := Lemma5(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Lemma5CSV(l5), "hilbert_growth") {
		t.Error("lemma5 csv header")
	}
	eta, err := Eta(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(EtaCSV(eta), "paper_bound") {
		t.Error("eta csv header")
	}
}
