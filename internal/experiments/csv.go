package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// CSV renderers for plotting the reproduction data externally. Every
// distribution figure shares one schema; the scalar tables have their own.

// DistRowsCSV renders distribution rows (figures 5-7) as CSV with the
// schema: group,curve,n,min,q1,median,q3,max,mean.
func DistRowsCSV(rows []DistRow) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{"group", "curve", "n", "min", "q1", "median", "q3", "max", "mean"})
	for _, r := range rows {
		s := r.Summary
		_ = w.Write([]string{
			r.Group, r.Curve,
			fmt.Sprint(s.Count),
			fmt.Sprintf("%g", s.Min),
			fmt.Sprintf("%g", s.Q1),
			fmt.Sprintf("%g", s.Median),
			fmt.Sprintf("%g", s.Q3),
			fmt.Sprintf("%g", s.Max),
			fmt.Sprintf("%g", s.Mean),
		})
	}
	w.Flush()
	return b.String()
}

// Lemma5CSV renders the growth experiment as CSV.
func Lemma5CSV(rows []Lemma5Row) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{"dims", "side", "onion", "hilbert", "hilbert_growth"})
	for _, r := range rows {
		_ = w.Write([]string{
			fmt.Sprint(r.Dims), fmt.Sprint(r.Side),
			fmt.Sprintf("%g", r.Onion), fmt.Sprintf("%g", r.Hilbert),
			fmt.Sprintf("%g", r.HilbertRate),
		})
	}
	w.Flush()
	return b.String()
}

// EtaCSV renders the empirical ratio sweep as CSV.
func EtaCSV(rows []EtaRow) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{"phi", "l", "onion_eta", "hilbert_eta", "paper_bound"})
	for _, r := range rows {
		_ = w.Write([]string{
			fmt.Sprintf("%g", r.Phi), fmt.Sprint(r.L),
			fmt.Sprintf("%g", r.OnionRatio), fmt.Sprintf("%g", r.HilbertRatio),
			fmt.Sprintf("%g", r.TheoryBound),
		})
	}
	w.Flush()
	return b.String()
}
