package experiments

import (
	"strings"
	"testing"
)

func TestEta(t *testing.T) {
	rows, err := Eta(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OnionRatio < 1-1e-9 {
			t.Errorf("phi=%.3f: onion ratio %.3f below 1 — lower bound violated", r.Phi, r.OnionRatio)
		}
		// The exact LB is weaker than the asymptotic one on finite
		// grids, so allow generous slack over the paper bound; what must
		// never happen is a blow-up.
		if r.OnionRatio > r.TheoryBound*2 {
			t.Errorf("phi=%.3f: onion ratio %.3f far above paper bound %.3f",
				r.Phi, r.OnionRatio, r.TheoryBound)
		}
		if r.HilbertRatio < r.OnionRatio*0.5 {
			t.Errorf("phi=%.3f: hilbert ratio %.3f implausibly below onion %.3f",
				r.Phi, r.HilbertRatio, r.OnionRatio)
		}
	}
	// Hilbert's ratio at the largest phi must exceed the onion's.
	last := rows[len(rows)-1]
	if last.HilbertRatio <= last.OnionRatio {
		t.Errorf("phi=%.3f: hilbert %.3f should exceed onion %.3f",
			last.Phi, last.HilbertRatio, last.OnionRatio)
	}
	if !strings.Contains(RenderEta(rows), "paper bound") {
		t.Error("render")
	}
}
