package experiments

import (
	"fmt"
	"strings"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/viz"
	"github.com/onioncurve/onion/internal/workload"
)

// Fig1 reproduces Figure 1: the same query region clustered by the Hilbert
// curve (2 clusters) and the Z curve (4 clusters), rendered as ASCII.
func Fig1() (string, error) {
	h, err := baseline.NewHilbert(2, 8)
	if err != nil {
		return "", err
	}
	z, err := baseline.NewMorton(2, 8)
	if err != nil {
		return "", err
	}
	q := geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{0, 3}}
	var b strings.Builder
	for _, c := range []curve.Curve{h, z} {
		pic, n, err := viz.QueryClusters(c, q)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s: clustering number %d for query %v\n%s\n", c.Name(), n, q, pic)
	}
	return b.String(), nil
}

// Fig2Row is one cell of the Figure 2 reproduction: the exact average
// clustering number over all translates of an l x l query.
type Fig2Row struct {
	Side    uint32
	L       uint32
	Curve   string
	Average float64
}

// Fig2 reproduces Figure 2's claim: for 7x7 (and generally l x l) query
// shapes the Hilbert curve's average clustering number is much higher than
// the onion curve's. It computes exact averages over all translates for a
// series of universe sides.
func Fig2(cfg Config) ([]Fig2Row, error) {
	cfg = cfg.withDefaults()
	maxSide := uint32(128)
	if cfg.Quick {
		maxSide = 32
	}
	var rows []Fig2Row
	for side := uint32(16); side <= maxSide; side *= 2 {
		cs, err := curves2D(side)
		if err != nil {
			return nil, err
		}
		for _, l := range []uint32{7, side - 1} {
			for _, c := range cs {
				avg, err := cluster.AverageExact(c, []uint32{l, l})
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig2Row{Side: side, L: l, Curve: c.Name(), Average: avg})
			}
		}
	}
	return rows, nil
}

// RenderFig2 renders Fig2 rows plus the illustrative single-query picture.
func RenderFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Figure 2: exact average clustering over all translates of an l x l query\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "side=%-5d l=%-4d %-8s avg=%.3f\n", r.Side, r.L, r.Curve, r.Average)
	}
	// Single-query illustration on a 16x16 grid: a 7x7 query.
	o, _ := core.NewOnion2D(16)
	h, _ := baseline.NewHilbert(2, 16)
	q := geom.Rect{Lo: geom.Point{4, 4}, Hi: geom.Point{10, 10}}
	for _, c := range []curve.Curve{h, o} {
		pic, n, err := viz.QueryClusters(c, q)
		if err == nil {
			fmt.Fprintf(&b, "\n%s: 7x7 query at (4,4): %d clusters\n%s", c.Name(), n, pic)
		}
	}
	return b.String()
}

// Fig5a reproduces Figure 5a: distribution of clustering numbers of random
// squares of side l = side - 50k (k odd), 2D, onion vs Hilbert.
func Fig5a(cfg Config) ([]DistRow, error) {
	cfg = cfg.withDefaults()
	cs, err := curves2D(cfg.Side2D)
	if err != nil {
		return nil, err
	}
	u := geom.MustUniverse(2, cfg.Side2D)
	var rows []DistRow
	for i, l := range workload.Figure5Sides2D(cfg.Side2D) {
		qs, err := workload.RandomTranslates(u, []uint32{l, l}, cfg.Samples2D, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		rs, err := distribution(fmt.Sprintf("l=%d", l), cs, qs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	return rows, nil
}

// Fig5b reproduces Figure 5b: random cubes in 3D with the paper's side
// list, onion vs Hilbert. Counting uses the boundary methods, so the
// 472^3-cell queries cost only O(surface).
func Fig5b(cfg Config) ([]DistRow, error) {
	cfg = cfg.withDefaults()
	cs, err := curves3D(cfg.Side3D)
	if err != nil {
		return nil, err
	}
	u := geom.MustUniverse(3, cfg.Side3D)
	sides := workload.Figure5Sides3D(cfg.Side3D)
	if len(sides) == 0 {
		// Universe smaller than the paper's side list: scale it.
		sides = []uint32{cfg.Side3D - cfg.Side3D/8, cfg.Side3D / 2, cfg.Side3D / 4}
	}
	var rows []DistRow
	for i, l := range sides {
		qs, err := workload.RandomTranslates(u, []uint32{l, l, l}, cfg.Samples3D, cfg.Seed+100+int64(i))
		if err != nil {
			return nil, err
		}
		rs, err := distribution(fmt.Sprintf("l=%d", l), cs, qs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	return rows, nil
}

// Fig6a reproduces Figure 6a: rectangles with fixed side-length ratios
// (Algorithm 1) in 2D.
func Fig6a(cfg Config) ([]DistRow, error) {
	cfg = cfg.withDefaults()
	return fig6(cfg, 2)
}

// Fig6b is the 3D analogue (Figure 6b): the first two sides are
// floor(l3 / rho), the third sweeps downward, matching the paper's
// description of "a similar experiment for the case d = 3".
func Fig6b(cfg Config) ([]DistRow, error) {
	cfg = cfg.withDefaults()
	return fig6(cfg, 3)
}

func fig6(cfg Config, dims int) ([]DistRow, error) {
	var (
		cs   []curve.Curve
		side uint32
		err  error
	)
	if dims == 2 {
		side = cfg.Side2D
		cs, err = curves2D(side)
	} else {
		side = cfg.Side3D
		cs, err = curves3D(side)
	}
	if err != nil {
		return nil, err
	}
	u := geom.MustUniverse(dims, side)
	step := uint32(50)
	if side < 512 {
		step = side / 8
	}
	perStep := 20
	if cfg.Quick {
		perStep = 4
	}
	var rows []DistRow
	for i, rho := range workload.Figure6Ratios() {
		qs, err := workload.FixedRatio(u, rho, step, perStep, cfg.Seed+200+int64(i))
		if err != nil {
			return nil, err
		}
		if len(qs) == 0 {
			continue
		}
		rs, err := distribution(fmt.Sprintf("rho=%.4g", rho), cs, qs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	return rows, nil
}

// Fig7a reproduces Figure 7a: rectangles with uniformly random corner
// points in 2D.
func Fig7a(cfg Config) ([]DistRow, error) {
	cfg = cfg.withDefaults()
	cs, err := curves2D(cfg.Side2D)
	if err != nil {
		return nil, err
	}
	u := geom.MustUniverse(2, cfg.Side2D)
	qs, err := workload.RandomCorners(u, cfg.Samples2D, cfg.Seed+300)
	if err != nil {
		return nil, err
	}
	return distribution("random", cs, qs)
}

// Fig7b is the 3D analogue (Figure 7b).
func Fig7b(cfg Config) ([]DistRow, error) {
	cfg = cfg.withDefaults()
	cs, err := curves3D(cfg.Side3D)
	if err != nil {
		return nil, err
	}
	u := geom.MustUniverse(3, cfg.Side3D)
	qs, err := workload.RandomCorners(u, cfg.Samples3D, cfg.Seed+301)
	if err != nil {
		return nil, err
	}
	return distribution("random", cs, qs)
}
