package experiments

import (
	"fmt"

	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/stats"
	"github.com/onioncurve/onion/internal/theory"
)

// EtaRow is one cube scale phi = l/side of the empirical approximation
// ratio sweep.
type EtaRow struct {
	Phi          float64
	L            uint32
	OnionRatio   float64 // measured onion avg / exact general lower bound
	HilbertRatio float64
	TheoryBound  float64 // the paper's case III / IV bound at this phi
}

// Eta sweeps cube query scales and compares each curve's measured
// average clustering against the exact any-SFC lower bound of Theorem 3 —
// the empirical counterpart of Table II's eta(Q, pi). The onion ratios
// must stay below the paper's constants (2.32 for phi <= 1/2, 2 beyond)
// up to finite-size slack; Hilbert's ratio grows with phi.
func Eta(cfg Config) ([]EtaRow, error) {
	cfg = cfg.withDefaults()
	side := uint32(128)
	if cfg.Quick {
		side = 64
	}
	cs, err := curves2D(side)
	if err != nil {
		return nil, err
	}
	u := geom.MustUniverse(2, side)
	var rows []EtaRow
	for _, num := range []uint32{1, 2, 3, 4, 5, 6, 7} {
		l := side * num / 8
		phi := float64(num) / 8
		shape := []uint32{l, l}
		lb, err := theory.LowerBoundGeneral(u, shape)
		if err != nil {
			return nil, err
		}
		oAvg, err := cluster.AverageExact(cs[0], shape)
		if err != nil {
			return nil, err
		}
		hAvg, err := cluster.AverageExact(cs[1], shape)
		if err != nil {
			return nil, err
		}
		var bound float64
		if phi <= 0.5 {
			bound, err = theory.EtaOnion2DCube(phi)
			if err != nil {
				return nil, err
			}
		} else {
			bound = 2 // case IV with phi1 = phi2
		}
		rows = append(rows, EtaRow{
			Phi:          phi,
			L:            l,
			OnionRatio:   oAvg / lb,
			HilbertRatio: hAvg / lb,
			TheoryBound:  bound,
		})
	}
	return rows, nil
}

// RenderEta renders the ratio sweep.
func RenderEta(rows []EtaRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.3f", r.Phi),
			fmt.Sprint(r.L),
			fmt.Sprintf("%.3f", r.OnionRatio),
			fmt.Sprintf("%.3f", r.HilbertRatio),
			fmt.Sprintf("%.3f", r.TheoryBound),
		})
	}
	return "Empirical approximation ratios for cube queries (measured avg / exact any-SFC LB)\n" +
		stats.FormatTable([]string{"phi", "l", "onion eta", "hilbert eta", "paper bound (onion)"}, out)
}
