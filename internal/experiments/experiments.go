// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VII) plus the analytical tables (I and II), the
// Hilbert growth demonstration of Lemma 5, validation sweeps for Theorems
// 1-6, and the database-level experiments (disk seeks, partition fan-out)
// that ground the paper's motivation. Each experiment returns structured
// rows plus a rendered table; cmd/onionbench drives them and EXPERIMENTS.md
// records paper-vs-measured values.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/stats"
)

// Config scales the experiments. The zero value runs the paper's full
// parameters; Quick shrinks universes and sample counts so the whole suite
// finishes in seconds (used by tests and -quick).
type Config struct {
	Quick     bool
	Seed      int64
	Side2D    uint32 // 2D universe side (paper: 2^10)
	Side3D    uint32 // 3D universe side (paper: 2^9)
	Samples2D int    // random queries per group in 2D (paper: 1000)
	Samples3D int    // random queries per group in 3D (paper: 500)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Side2D == 0 {
		if c.Quick {
			c.Side2D = 256
		} else {
			c.Side2D = 1 << 10
		}
	}
	if c.Side3D == 0 {
		if c.Quick {
			c.Side3D = 64
		} else {
			c.Side3D = 1 << 9
		}
	}
	if c.Samples2D == 0 {
		if c.Quick {
			c.Samples2D = 50
		} else {
			c.Samples2D = 1000
		}
	}
	if c.Samples3D == 0 {
		if c.Quick {
			c.Samples3D = 20
		} else {
			c.Samples3D = 500
		}
	}
	return c
}

// DistRow is one (query group, curve) cell of a box-plot figure: the five
// number summary the paper's plots encode.
type DistRow struct {
	Group   string
	Curve   string
	Summary stats.Summary
}

// RenderDistRows renders distribution rows as a table.
func RenderDistRows(title string, rows []DistRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		s := r.Summary
		out = append(out, []string{
			r.Group, r.Curve,
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.0f", s.Min),
			fmt.Sprintf("%.1f", s.Q1),
			fmt.Sprintf("%.1f", s.Median),
			fmt.Sprintf("%.1f", s.Q3),
			fmt.Sprintf("%.0f", s.Max),
			fmt.Sprintf("%.2f", s.Mean),
		})
	}
	return title + "\n" + stats.FormatTable(
		[]string{"group", "curve", "n", "min", "q1", "median", "q3", "max", "mean"}, out)
}

// CountAuto picks the cheapest exact counter available for the curve:
// Lemma 1 boundary counting for continuous curves, the jump-aware variant
// for almost-continuous curves, sorted run counting otherwise.
func CountAuto(c curve.Curve, r geom.Rect) (uint64, error) {
	if curve.IsContinuous(c) {
		return cluster.CountContinuous(c, r)
	}
	if _, ok := c.(cluster.JumpLister); ok {
		return cluster.CountNearContinuous(c, r)
	}
	return cluster.CountSorted(c, r, 0)
}

// distribution measures the clustering numbers of all queries under every
// curve and summarizes per curve. Queries are counted in parallel: the
// curves are immutable after construction and every counter allocates its
// own scratch space.
func distribution(group string, curves []curve.Curve, queries []geom.Rect) ([]DistRow, error) {
	workers := runtime.GOMAXPROCS(0)
	rows := make([]DistRow, 0, len(curves))
	for _, c := range curves {
		vals := make([]uint64, len(queries))
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for qi := range next {
					n, err := CountAuto(c, queries[qi])
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("%s on %v: %w", c.Name(), queries[qi], err)
						}
						mu.Unlock()
						continue
					}
					vals[qi] = n
				}
			}()
		}
		for qi := range queries {
			next <- qi
		}
		close(next)
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		rows = append(rows, DistRow{Group: group, Curve: c.Name(), Summary: stats.SummarizeUints(vals)})
	}
	return rows, nil
}

// curves2D returns the two curves every 2D figure compares (onion first).
func curves2D(side uint32) ([]curve.Curve, error) {
	o, err := core.NewOnion2D(side)
	if err != nil {
		return nil, err
	}
	h, err := baseline.NewHilbert(2, side)
	if err != nil {
		return nil, err
	}
	return []curve.Curve{o, h}, nil
}

// curves3D returns the 3D pair.
func curves3D(side uint32) ([]curve.Curve, error) {
	o, err := core.NewOnion3D(side)
	if err != nil {
		return nil, err
	}
	h, err := baseline.NewHilbert(3, side)
	if err != nil {
		return nil, err
	}
	return []curve.Curve{o, h}, nil
}
