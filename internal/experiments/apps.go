package experiments

import (
	"fmt"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/disksim"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/index"
	"github.com/onioncurve/onion/internal/partition"
	"github.com/onioncurve/onion/internal/stats"
	"github.com/onioncurve/onion/internal/workload"
)

// allCurves2D builds the full comparison set used by application-level
// experiments (power-of-two side required).
func allCurves2D(side uint32) ([]curve.Curve, error) {
	o, err := core.NewOnion2D(side)
	if err != nil {
		return nil, err
	}
	h, err := baseline.NewHilbert(2, side)
	if err != nil {
		return nil, err
	}
	z, err := baseline.NewMorton(2, side)
	if err != nil {
		return nil, err
	}
	g, err := baseline.NewGray(2, side)
	if err != nil {
		return nil, err
	}
	s, err := baseline.NewSnake(2, side)
	if err != nil {
		return nil, err
	}
	r, err := baseline.NewRowMajor(2, side)
	if err != nil {
		return nil, err
	}
	return []curve.Curve{o, h, z, g, s, r}, nil
}

// SeeksRow summarizes index execution per curve.
type SeeksRow struct {
	Curve         string
	AvgRanges     float64
	AvgSeeks      float64
	AvgPages      float64
	AvgCostMs     float64
	AvgBudgetCost float64 // with an 8-range budget
	AvgFalsePos   float64 // false positives under the budget
}

// Seeks runs the end-to-end index experiment behind the paper's
// motivation: build an SFC-clustered index per curve over synthetic
// clustered points, run random rectangle queries, and price the disk
// access patterns.
func Seeks(cfg Config) ([]SeeksRow, error) {
	cfg = cfg.withDefaults()
	side := uint32(256)
	points := 20000
	queries := 40
	if cfg.Quick {
		side = 64
		points = 2000
		queries = 15
	}
	u := geom.MustUniverse(2, side)
	pts, err := workload.ClusteredPoints(u, 6, points, cfg.Seed+400)
	if err != nil {
		return nil, err
	}
	qs, err := workload.RandomCorners(u, queries, cfg.Seed+401)
	if err != nil {
		return nil, err
	}
	cs, err := allCurves2D(side)
	if err != nil {
		return nil, err
	}
	cs = cs[:3] // onion, hilbert, z — the headline comparison
	model := disksim.DefaultModel()
	var rows []SeeksRow
	for _, c := range cs {
		ix, err := index.New(c)
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			if _, err := ix.Insert(p); err != nil {
				return nil, err
			}
		}
		var row SeeksRow
		row.Curve = c.Name()
		for _, q := range qs {
			_, st, err := ix.Query(q)
			if err != nil {
				return nil, err
			}
			row.AvgRanges += float64(st.Ranges)
			row.AvgSeeks += float64(st.Disk.Seeks)
			row.AvgPages += float64(st.Disk.PagesRead)
			row.AvgCostMs += st.Disk.Cost(model)
			_, stb, err := ix.QueryBudget(q, 8)
			if err != nil {
				return nil, err
			}
			row.AvgBudgetCost += stb.Disk.Cost(model)
			row.AvgFalsePos += float64(stb.FalsePositives)
		}
		n := float64(len(qs))
		row.AvgRanges /= n
		row.AvgSeeks /= n
		row.AvgPages /= n
		row.AvgCostMs /= n
		row.AvgBudgetCost /= n
		row.AvgFalsePos /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSeeks renders the index experiment.
func RenderSeeks(rows []SeeksRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Curve,
			fmt.Sprintf("%.1f", r.AvgRanges),
			fmt.Sprintf("%.1f", r.AvgSeeks),
			fmt.Sprintf("%.1f", r.AvgPages),
			fmt.Sprintf("%.2f", r.AvgCostMs),
			fmt.Sprintf("%.2f", r.AvgBudgetCost),
			fmt.Sprintf("%.1f", r.AvgFalsePos),
		})
	}
	return "Index experiment: avg per query (random rectangles, clustered points)\n" +
		stats.FormatTable([]string{"curve", "ranges", "seeks", "pages", "cost ms", "cost ms (budget 8)", "false pos"}, out)
}

// FanoutRow summarizes partition fan-out per curve.
type FanoutRow struct {
	Curve     string
	Shards    int
	AvgFanout float64
	MaxLoad   int // of a balanced-by-weight partitioning of the sample
}

// Fanout measures how many shards a rectangle query touches when the key
// space is range-partitioned — the distributed-partitioning motivation of
// the paper's introduction.
func Fanout(cfg Config) ([]FanoutRow, error) {
	cfg = cfg.withDefaults()
	side := uint32(256)
	queries := 40
	shards := 16
	if cfg.Quick {
		side = 64
		queries = 15
	}
	u := geom.MustUniverse(2, side)
	qs, err := workload.RandomTranslates(u, []uint32{side / 4, side / 4}, queries, cfg.Seed+500)
	if err != nil {
		return nil, err
	}
	pts, err := workload.ClusteredPoints(u, 5, 5000, cfg.Seed+501)
	if err != nil {
		return nil, err
	}
	cs, err := allCurves2D(side)
	if err != nil {
		return nil, err
	}
	cs = cs[:3]
	var rows []FanoutRow
	for _, c := range cs {
		keys := make([]uint64, len(pts))
		for i, p := range pts {
			keys[i] = c.Index(p)
		}
		part, err := partition.ByWeight(c, keys, shards)
		if err != nil {
			return nil, err
		}
		row := FanoutRow{Curve: c.Name(), Shards: shards}
		for _, q := range qs {
			fo, err := part.FanOut(q)
			if err != nil {
				return nil, err
			}
			row.AvgFanout += float64(fo)
		}
		row.AvgFanout /= float64(len(qs))
		for _, l := range part.Loads(keys) {
			if l > row.MaxLoad {
				row.MaxLoad = l
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFanout renders the partition experiment.
func RenderFanout(rows []FanoutRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Curve, fmt.Sprint(r.Shards),
			fmt.Sprintf("%.2f", r.AvgFanout), fmt.Sprint(r.MaxLoad),
		})
	}
	return "Partition fan-out: shards touched per quarter-size square query (weight-balanced shards)\n" +
		stats.FormatTable([]string{"curve", "shards", "avg fan-out", "max shard load"}, out)
}

// AblationRow compares the onion family's within-layer orders.
type AblationRow struct {
	L     uint32
	Curve string
	Mean  float64
}

// Ablation separates two different claims about the onion curve's
// within-layer structure. The paper proves the *segment permutation* is
// immaterial (Section VI-A): a 3D onion curve visiting S1..S10 in an
// arbitrary order clusters identically to the paper's order — rows
// "onion" vs "onion-perm" confirm this. In contrast, degrading the order
// *inside* segments (OnionND's per-slice tube rings, LayerLex's
// lexicographic shells) destroys the constant: both remain layer-
// sequential yet cluster orders of magnitude worse on large cubes, which
// shows the segments' internal 2D-onion structure is load-bearing.
func Ablation(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	side := uint32(32)
	samples := 30
	if cfg.Quick {
		side = 16
		samples = 10
	}
	o3, err := core.NewOnion3D(side)
	if err != nil {
		return nil, err
	}
	o3p, err := core.NewOnion3DWithSegmentOrder(side, [10]int{9, 1, 3, 4, 5, 2, 6, 7, 8, 10})
	if err != nil {
		return nil, err
	}
	o3p.Id = "onion-perm"
	nd, err := core.NewOnionND(3, side)
	if err != nil {
		return nil, err
	}
	ll, err := core.NewLayerLex(3, side)
	if err != nil {
		return nil, err
	}
	h3, err := baseline.NewHilbert(3, side)
	if err != nil {
		return nil, err
	}
	cs := []curve.Curve{o3, o3p, nd, ll, h3}
	u := geom.MustUniverse(3, side)
	var rows []AblationRow
	for i, frac := range []uint32{8, 4, 2} {
		l := side - side/frac
		qs, err := workload.RandomTranslates(u, []uint32{l, l, l}, samples, cfg.Seed+600+int64(i))
		if err != nil {
			return nil, err
		}
		for _, c := range cs {
			var sum float64
			for _, q := range qs {
				n, err := cluster.CountSorted(c, q, 0)
				if err != nil {
					return nil, err
				}
				sum += float64(n)
			}
			rows = append(rows, AblationRow{L: l, Curve: c.Name(), Mean: sum / float64(len(qs))})
		}
	}
	return rows, nil
}

// RenderAblation renders the ablation table.
func RenderAblation(rows []AblationRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{fmt.Sprint(r.L), r.Curve, fmt.Sprintf("%.2f", r.Mean)})
	}
	return "Ablation: within-layer order (onion vs onionnd vs layerlex) vs hilbert, 3D cubes\n" +
		stats.FormatTable([]string{"l", "curve", "mean clusters"}, out)
}
