package experiments

import (
	"strings"
	"testing"
)

func TestSpreadExp(t *testing.T) {
	rows, err := SpreadExp(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 sizes x 3 curves
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[[2]interface{}]SpreadRow{}
	var smallL, largeL uint32 = ^uint32(0), 0
	for _, r := range rows {
		byKey[[2]interface{}{r.L, r.Curve}] = r
		if r.L < smallL {
			smallL = r.L
		}
		if r.L > largeL {
			largeL = r.L
		}
	}
	// Continuous curves have k=1 stretch exactly 1; the Z curve exceeds it.
	for _, r := range rows {
		switch r.Curve {
		case "onion", "hilbert":
			if r.StretchK1 != 1 {
				t.Errorf("%s stretch %.3f != 1", r.Curve, r.StretchK1)
			}
		case "zcurve":
			if r.StretchK1 <= 1 {
				t.Errorf("zcurve stretch %.3f should exceed 1", r.StretchK1)
			}
		}
	}
	// On near-full queries the onion curve has both fewer clusters and
	// less spread.
	oBig := byKey[[2]interface{}{largeL, "onion"}]
	hBig := byKey[[2]interface{}{largeL, "hilbert"}]
	if oBig.AvgClusters >= hBig.AvgClusters {
		t.Errorf("large query: onion clusters %.1f should beat hilbert %.1f",
			oBig.AvgClusters, hBig.AvgClusters)
	}
	// On small queries onion's gap cells exceed Hilbert's — the
	// inter-cluster-distance tradeoff.
	oSmall := byKey[[2]interface{}{smallL, "onion"}]
	hSmall := byKey[[2]interface{}{smallL, "hilbert"}]
	if oSmall.AvgGapCells <= hSmall.AvgGapCells {
		t.Errorf("small query: onion gaps %.0f expected to exceed hilbert %.0f",
			oSmall.AvgGapCells, hSmall.AvgGapCells)
	}
	if !strings.Contains(RenderSpread(rows), "stretch") {
		t.Error("render")
	}
}
