package experiments

import (
	"fmt"
	"strings"

	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/stats"
	"github.com/onioncurve/onion/internal/theory"
)

// Table1Row is one universe size of the Table I demonstration: the
// theoretical ratios are constants for the onion curve and grow like
// n^((d-1)/d) for the Hilbert curve; the measured columns show exact
// average clustering numbers for near-full-size cubes (l = side - 7),
// where the growth is starkest.
type Table1Row struct {
	Dims       int
	Side       uint32
	OnionAvg   float64
	HilbertAvg float64
}

// Table1 reproduces Table I: the analytic bounds (2.32 / 3.4 for the onion
// curve; Omega(sqrt(n)) / Omega(n^(2/3)) for Hilbert) plus a doubling
// experiment that makes the Hilbert blow-up measurable.
func Table1(cfg Config) (string, []Table1Row, error) {
	cfg = cfg.withDefaults()
	phi2, eta2 := theory.MaxEtaOnion2DCube()
	phi3, eta3 := theory.MaxEtaOnion3DCube()
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: clustering approximation ratio for cube queries\n")
	fmt.Fprintf(&b, "  onion 2D: <= %.2f (max at phi=%.3f)   hilbert 2D: Omega(sqrt(n))\n", eta2, phi2)
	fmt.Fprintf(&b, "  onion 3D: <= %.2f (max at phi=%.4f)  hilbert 3D: Omega(n^(2/3))\n\n", eta3, phi3)
	b.WriteString("Doubling demonstration, exact averages for l = side-7 (2D), side-3 (3D):\n")

	var rows []Table1Row
	max2 := cfg.Side2D
	if max2 > 256 && cfg.Quick {
		max2 = 256
	}
	for side := uint32(16); side <= max2; side *= 2 {
		cs, err := curves2D(side)
		if err != nil {
			return "", nil, err
		}
		l := side - 7
		oAvg, err := cluster.AverageExact(cs[0], []uint32{l, l})
		if err != nil {
			return "", nil, err
		}
		hAvg, err := cluster.AverageExact(cs[1], []uint32{l, l})
		if err != nil {
			return "", nil, err
		}
		rows = append(rows, Table1Row{Dims: 2, Side: side, OnionAvg: oAvg, HilbertAvg: hAvg})
	}
	max3 := uint32(64)
	if !cfg.Quick {
		max3 = 128
	}
	for side := uint32(8); side <= max3; side *= 2 {
		cs, err := curves3D(side)
		if err != nil {
			return "", nil, err
		}
		l := side - 3
		oAvg, err := cluster.AverageExact(cs[0], []uint32{l, l, l})
		if err != nil {
			return "", nil, err
		}
		hAvg, err := cluster.AverageExact(cs[1], []uint32{l, l, l})
		if err != nil {
			return "", nil, err
		}
		rows = append(rows, Table1Row{Dims: 3, Side: side, OnionAvg: oAvg, HilbertAvg: hAvg})
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%dD", r.Dims),
			fmt.Sprint(r.Side),
			fmt.Sprintf("%.2f", r.OnionAvg),
			fmt.Sprintf("%.2f", r.HilbertAvg),
			fmt.Sprintf("%.1fx", r.HilbertAvg/r.OnionAvg),
		})
	}
	b.WriteString(stats.FormatTable([]string{"dims", "side", "onion avg", "hilbert avg", "gap"}, out))
	return b.String(), rows, nil
}

// Table2 renders the paper's Table II from the theory formulas.
func Table2() string {
	rows := theory.TableII()
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Case, r.Eta2D, r.Eta2DCube, r.Eta3DCube, r.EtaHilbert})
	}
	return "Table II: eta(Q,O) and eta(Q,H) for near-cube query sets\n" +
		stats.FormatTable([]string{"case", "eta2D (l1<=l2)", "eta2D cube", "eta3D cube", "hilbert"}, out)
}

// Lemma5Row records the exact average clustering number for near-full
// cubes as the universe doubles: Hilbert roughly doubles (2D) per doubling
// of the side while the onion curve stays constant.
type Lemma5Row struct {
	Dims        int
	Side        uint32
	Onion       float64
	Hilbert     float64
	HilbertRate float64 // ratio vs previous row of the same dims
}

// Lemma5 runs the growth experiment behind Lemma 5 and Table I.
func Lemma5(cfg Config) ([]Lemma5Row, error) {
	cfg = cfg.withDefaults()
	var rows []Lemma5Row
	maxSide2 := cfg.Side2D
	prev := map[int]float64{}
	for side := uint32(16); side <= maxSide2; side *= 2 {
		cs, err := curves2D(side)
		if err != nil {
			return nil, err
		}
		l := side - 7 // L = 8 fixed as the universe grows
		o, err := cluster.AverageExact(cs[0], []uint32{l, l})
		if err != nil {
			return nil, err
		}
		h, err := cluster.AverageExact(cs[1], []uint32{l, l})
		if err != nil {
			return nil, err
		}
		rate := 0.0
		if prev[2] > 0 {
			rate = h / prev[2]
		}
		prev[2] = h
		rows = append(rows, Lemma5Row{Dims: 2, Side: side, Onion: o, Hilbert: h, HilbertRate: rate})
	}
	maxSide3 := uint32(64)
	if !cfg.Quick {
		maxSide3 = 128
	}
	for side := uint32(8); side <= maxSide3; side *= 2 {
		cs, err := curves3D(side)
		if err != nil {
			return nil, err
		}
		l := side - 3
		o, err := cluster.AverageExact(cs[0], []uint32{l, l, l})
		if err != nil {
			return nil, err
		}
		h, err := cluster.AverageExact(cs[1], []uint32{l, l, l})
		if err != nil {
			return nil, err
		}
		rate := 0.0
		if prev[3] > 0 {
			rate = h / prev[3]
		}
		prev[3] = h
		rows = append(rows, Lemma5Row{Dims: 3, Side: side, Onion: o, Hilbert: h, HilbertRate: rate})
	}
	return rows, nil
}

// RenderLemma5 renders the growth table.
func RenderLemma5(rows []Lemma5Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		rate := "-"
		if r.HilbertRate > 0 {
			rate = fmt.Sprintf("%.2fx", r.HilbertRate)
		}
		out = append(out, []string{
			fmt.Sprintf("%dD", r.Dims), fmt.Sprint(r.Side),
			fmt.Sprintf("%.3f", r.Onion), fmt.Sprintf("%.2f", r.Hilbert), rate,
		})
	}
	return "Lemma 5: exact average clustering for near-full cubes (onion stays Theta(1), hilbert grows as n^((d-1)/d))\n" +
		stats.FormatTable([]string{"dims", "side", "onion", "hilbert", "hilbert growth"}, out)
}

// Thm1Row compares Theorem 1's prediction against the exact measurement.
type Thm1Row struct {
	L1, L2    uint32
	Predicted float64
	Eps       float64
	Measured  float64
}

// Thm1 validates Theorem 1 on a real grid.
func Thm1(cfg Config) ([]Thm1Row, error) {
	cfg = cfg.withDefaults()
	side := cfg.Side2D
	if side > 256 {
		side = 256 // exact averages at 1024^2 are slow for a sweep
	}
	cs, err := curves2D(side)
	if err != nil {
		return nil, err
	}
	onion := cs[0]
	m := side / 2
	shapes := [][2]uint32{
		{2, 2}, {4, 8}, {m / 2, m / 2}, {m / 2, m}, {m, m},
		{m + 2, m + 2}, {m + m/2, m + m/2}, {side - 3, side - 1}, {side, side},
	}
	var rows []Thm1Row
	for _, ll := range shapes {
		mean, eps, ok := theory.Theorem1(side, ll[0], ll[1])
		if !ok {
			continue
		}
		got, err := cluster.AverageExact(onion, []uint32{ll[0], ll[1]})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Thm1Row{L1: ll[0], L2: ll[1], Predicted: mean, Eps: eps, Measured: got})
	}
	return rows, nil
}

// RenderThm1 renders the validation table.
func RenderThm1(rows []Thm1Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%dx%d", r.L1, r.L2),
			fmt.Sprintf("%.3f", r.Predicted),
			fmt.Sprintf("%.0f", r.Eps),
			fmt.Sprintf("%.3f", r.Measured),
			fmt.Sprintf("%+.3f", r.Measured-r.Predicted),
		})
	}
	return "Theorem 1 validation: onion 2D average clustering, prediction vs exact measurement\n" +
		stats.FormatTable([]string{"query", "theorem", "eps", "measured", "deviation"}, out)
}

// LBRow compares the exact lower bounds with per-curve measurements.
type LBRow struct {
	Shape        string
	LBContinuous float64
	LBGeneral    float64
	Measured     map[string]float64
}

// LowerBounds evaluates Theorems 2/3 numerically against every curve
// family on a moderate grid.
func LowerBounds(cfg Config) ([]LBRow, error) {
	cfg = cfg.withDefaults()
	side := uint32(32)
	u := geom.MustUniverse(2, side)
	cs, err := allCurves2D(side)
	if err != nil {
		return nil, err
	}
	var rows []LBRow
	for _, shape := range [][]uint32{{2, 2}, {4, 4}, {8, 8}, {4, 12}, {16, 16}, {20, 24}, {28, 28}, {31, 31}} {
		lbC, err := theory.LowerBoundContinuous(u, shape)
		if err != nil {
			return nil, err
		}
		lbG, err := theory.LowerBoundGeneral(u, shape)
		if err != nil {
			return nil, err
		}
		row := LBRow{
			Shape:        fmt.Sprintf("%dx%d", shape[0], shape[1]),
			LBContinuous: lbC,
			LBGeneral:    lbG,
			Measured:     map[string]float64{},
		}
		for _, c := range cs {
			avg, err := cluster.AverageExact(c, shape)
			if err != nil {
				return nil, err
			}
			row.Measured[c.Name()] = avg
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderLowerBounds renders the bound table.
func RenderLowerBounds(rows []LBRow, curveNames []string) string {
	headers := append([]string{"shape", "LB-cont", "LB-any"}, curveNames...)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells := []string{r.Shape, fmt.Sprintf("%.2f", r.LBContinuous), fmt.Sprintf("%.2f", r.LBGeneral)}
		for _, n := range curveNames {
			cells = append(cells, fmt.Sprintf("%.2f", r.Measured[n]))
		}
		out = append(out, cells)
	}
	return "Theorems 2/3: exact lower bounds vs measured average clustering (side 32)\n" +
		stats.FormatTable(headers, out)
}
