package disksim

import (
	"errors"
	"testing"

	"github.com/onioncurve/onion/internal/ranges"
)

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(0); !errors.Is(err, ErrPageSize) {
		t.Error("page size 0 accepted")
	}
	s, err := NewStore(16)
	if err != nil || s.PageSize() != 16 {
		t.Fatalf("NewStore: %v", err)
	}
}

func TestExecuteSingleRange(t *testing.T) {
	s, _ := NewStore(10)
	tally := s.Execute([]ranges.KeyRange{{Lo: 5, Hi: 34}})
	// Pages 0..3: 4 pages, one seek, 30 cells.
	if tally.Seeks != 1 || tally.PagesRead != 4 || tally.Cells != 30 {
		t.Fatalf("tally = %+v", tally)
	}
}

func TestExecuteDistantRanges(t *testing.T) {
	s, _ := NewStore(10)
	tally := s.Execute([]ranges.KeyRange{{Lo: 0, Hi: 9}, {Lo: 100, Hi: 109}, {Lo: 300, Hi: 309}})
	if tally.Seeks != 3 {
		t.Fatalf("seeks = %d, want 3", tally.Seeks)
	}
	if tally.PagesRead != 3 || tally.Cells != 30 {
		t.Fatalf("tally = %+v", tally)
	}
}

func TestExecuteSamePageRanges(t *testing.T) {
	s, _ := NewStore(100)
	// Two ranges on the same page: one seek, one page.
	tally := s.Execute([]ranges.KeyRange{{Lo: 0, Hi: 9}, {Lo: 50, Hi: 59}})
	if tally.Seeks != 1 || tally.PagesRead != 1 {
		t.Fatalf("tally = %+v", tally)
	}
	if tally.Cells != 20 {
		t.Fatalf("cells = %d", tally.Cells)
	}
}

func TestExecuteAdjacentPages(t *testing.T) {
	s, _ := NewStore(10)
	// Second range starts on the page right after the first ends:
	// sequential continuation, no extra seek.
	tally := s.Execute([]ranges.KeyRange{{Lo: 0, Hi: 9}, {Lo: 10, Hi: 29}})
	if tally.Seeks != 1 || tally.PagesRead != 3 {
		t.Fatalf("tally = %+v", tally)
	}
}

func TestExecuteEmpty(t *testing.T) {
	s, _ := NewStore(10)
	tally := s.Execute(nil)
	if tally != (Tally{}) {
		t.Fatalf("empty tally = %+v", tally)
	}
}

func TestCostModel(t *testing.T) {
	m := Model{SeekMillis: 10, PageMillis: 1}
	tl := Tally{Seeks: 3, PagesRead: 7}
	if got := tl.Cost(m); got != 37 {
		t.Fatalf("cost = %v", got)
	}
	d := DefaultModel()
	if d.SeekMillis <= d.PageMillis {
		t.Fatal("seeks must dominate page transfers in the default model")
	}
}

func TestTallyAdd(t *testing.T) {
	a := Tally{Seeks: 1, PagesRead: 2, Cells: 3}
	a.Add(Tally{Seeks: 10, PagesRead: 20, Cells: 30})
	if a != (Tally{Seeks: 11, PagesRead: 22, Cells: 33}) {
		t.Fatalf("add = %+v", a)
	}
}

func TestSeeksNeverExceedRanges(t *testing.T) {
	s, _ := NewStore(7)
	rs := []ranges.KeyRange{{Lo: 3, Hi: 5}, {Lo: 9, Hi: 20}, {Lo: 22, Hi: 22}, {Lo: 90, Hi: 95}}
	tally := s.Execute(rs)
	if tally.Seeks > uint64(len(rs)) {
		t.Fatalf("seeks %d > ranges %d", tally.Seeks, len(rs))
	}
	if tally.Cells != ranges.TotalCells(rs) {
		t.Fatal("cells mismatch")
	}
}
