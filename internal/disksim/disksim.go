// Package disksim models the disk access cost of executing a decomposed
// range query against a table clustered in curve order. This operationally
// grounds the paper's motivation (Section I): "the clustering number
// measures the number of disk seeks that need to be performed in the
// retrieval".
//
// The model is deliberately simple — a seek cost plus a sequential
// per-page transfer cost — because the paper's argument depends only on
// counting non-contiguous accesses, which the model preserves exactly.
package disksim

import (
	"errors"
	"fmt"

	"github.com/onioncurve/onion/internal/ranges"
)

// ErrPageSize reports an invalid page size.
var ErrPageSize = errors.New("disksim: page size must be positive")

// Model prices an access pattern. Defaults approximate a 7200 rpm disk:
// 8 ms per seek, 0.1 ms per 8 KiB page transferred.
type Model struct {
	SeekMillis float64
	PageMillis float64
}

// DefaultModel returns the default cost model.
func DefaultModel() Model { return Model{SeekMillis: 8, PageMillis: 0.1} }

// Tally is the access pattern of one query execution.
type Tally struct {
	Seeks     uint64 // non-contiguous repositionings
	PagesRead uint64 // total pages transferred
	Cells     uint64 // cells (records) delivered
}

// Cost prices the tally under the model.
func (t Tally) Cost(m Model) float64 {
	return float64(t.Seeks)*m.SeekMillis + float64(t.PagesRead)*m.PageMillis
}

// Add accumulates another tally.
func (t *Tally) Add(o Tally) {
	t.Seeks += o.Seeks
	t.PagesRead += o.PagesRead
	t.Cells += o.Cells
}

// Store simulates a table whose cells are laid out in curve-key order,
// packed pageSize cells per page.
type Store struct {
	pageSize uint64
}

// NewStore validates the page size and returns the store.
func NewStore(pageSize uint64) (*Store, error) {
	if pageSize == 0 {
		return nil, fmt.Errorf("%w (got 0)", ErrPageSize)
	}
	return &Store{pageSize: pageSize}, nil
}

// PageSize returns the cells-per-page packing factor.
func (s *Store) PageSize() uint64 { return s.pageSize }

// Execute computes the access pattern of reading the given sorted,
// disjoint key ranges: one seek per run of non-adjacent pages, sequential
// transfer within a run. Ranges landing on the page where the previous
// range ended do not pay a new seek (the head is already there), and
// shared boundary pages are not transferred twice.
func (s *Store) Execute(rs []ranges.KeyRange) Tally {
	var t Tally
	havePrev := false
	var prevPage uint64
	for _, r := range rs {
		pLo := r.Lo / s.pageSize
		pHi := r.Hi / s.pageSize
		t.Cells += r.Cells()
		if havePrev && pLo <= prevPage {
			// Continues on the page we already hold (or one we already
			// read): no seek; transfer only the new pages.
			if pHi > prevPage {
				t.PagesRead += pHi - prevPage
				prevPage = pHi
			}
			continue
		}
		if havePrev && pLo == prevPage+1 {
			// Physically adjacent: sequential continuation, no seek.
			t.PagesRead += pHi - pLo + 1
			prevPage = pHi
			continue
		}
		t.Seeks++
		t.PagesRead += pHi - pLo + 1
		prevPage = pHi
		havePrev = true
	}
	return t
}
