package shard

import (
	"fmt"
	"testing"
	"time"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/repl"
	"github.com/onioncurve/onion/internal/telemetry"
)

const srSide = 32

func testCurve(t testing.TB, side uint32) curve.Curve {
	t.Helper()
	o, err := core.NewOnion2D(side)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// engState reads an engine's entire logical content as key → payload.
func engState(t testing.TB, c curve.Curve, e *engine.Engine) map[uint64]uint64 {
	t.Helper()
	recs, _, err := e.Query(c.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[uint64]uint64, len(recs))
	for _, rec := range recs {
		m[c.Index(rec.Point)] = rec.Payload
	}
	return m
}

// TestShardedReplication: a replicated sharded service converges every
// shard's replica set bit-identically, degrades only the shard that
// loses quorum, recovers it, and rolls replication telemetry up without
// double-counting (the aggregate equals the sum of the labeled series).
func TestShardedReplication(t *testing.T) {
	const shards, followersPer = 2, 2
	c := testCurve(t, srSide)
	lb := repl.NewLoopback()
	tr := repl.NewInjectingTransport(lb)
	dir := t.TempDir()

	peerIDs := make([][]string, shards)
	var followers []*repl.Follower
	for s := 0; s < shards; s++ {
		for f := 0; f < followersPer; f++ {
			id := fmt.Sprintf("s%d-f%d", s, f+1)
			fo, err := repl.OpenFollower(id, dir+"/"+id, c,
				repl.FollowerOptions{Engine: engine.Options{PageBytes: 512, FlushEntries: -1, CompactFanout: -1, Shards: 2}})
			if err != nil {
				t.Fatal(err)
			}
			lb.Register(id, fo)
			followers = append(followers, fo)
			peerIDs[s] = append(peerIDs[s], id)
		}
	}
	defer func() {
		for _, fo := range followers {
			fo.Close() //nolint:errcheck
		}
	}()

	opts := manualShardOpts(shards)
	r, err := OpenReplicated(dir+"/service", c, opts, func(s int) repl.Config {
		return repl.Config{
			ID: fmt.Sprintf("s%d", s), Peers: peerIDs[s], Transport: tr,
			RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond, RetryAttempts: 2,
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close() //nolint:errcheck

	for i := 0; i < 80; i++ {
		p := geom.Point{uint32(i*7) % srSide, uint32(i*13+5) % srSide}
		if i%9 == 4 {
			if err := r.Delete(p); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := r.Put(p, uint64(5000+i)); err != nil {
			t.Fatal(err)
		}
	}
	r.Heartbeat()

	for s := 0; s < shards; s++ {
		want := engState(t, c, r.engines[s])
		for f := 0; f < followersPer; f++ {
			got := engState(t, c, followers[s*followersPer+f].Engine())
			if len(got) != len(want) {
				t.Fatalf("shard %d follower %d: %d records, want %d", s, f, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("shard %d follower %d: key %d = %d, want %d", s, f, k, got[k], v)
				}
			}
		}
	}
	for key, lag := range r.Lag() {
		if lag != 0 {
			t.Fatalf("%s lag %d after heartbeat", key, lag)
		}
	}

	// Telemetry: the aggregate repl series must equal the sum of the
	// shard-labeled copies — the no-double-count contract.
	snap := r.TelemetrySnapshot()
	agg := snap.Counter("repl_batches_total")
	if agg == 0 {
		t.Fatal("repl_batches_total did not move")
	}
	var sum uint64
	for s := 0; s < shards; s++ {
		sum += snap.Counter(telemetry.WithLabel("repl_batches_total", "shard", fmt.Sprintf("%d", s)))
	}
	if agg != sum {
		t.Fatalf("aggregate repl_batches_total %d != labeled sum %d (double-count)", agg, sum)
	}

	// Quorum loss is per shard: cut shard 0's followers, a write routed
	// there degrades only shard 0; shard 1 keeps accepting.
	tr.Partition(peerIDs[0]...)
	var p0, p1 geom.Point
	found0, found1 := false, false
	for i := 0; i < 1024 && (!found0 || !found1); i++ {
		p := geom.Point{uint32(i) % srSide, uint32(i / srSide) % srSide}
		switch r.part.Of(c.Index(p)) {
		case 0:
			if !found0 {
				p0, found0 = p.Clone(), true
			}
		case 1:
			if !found1 {
				p1, found1 = p.Clone(), true
			}
		}
	}
	if !found0 || !found1 {
		t.Fatal("could not find points for both shards")
	}
	if err := r.Put(p0, 1); err == nil {
		t.Fatal("shard-0 write committed without quorum")
	}
	if err := r.Put(p1, 2); err != nil {
		t.Fatalf("shard-1 write should be unaffected: %v", err)
	}
	healths := r.Health()
	if healths[0].State != engine.ReadOnly {
		t.Fatalf("shard 0 health = %v, want ReadOnly", healths[0].State)
	}
	if healths[1].State != engine.Healthy {
		t.Fatalf("shard 1 health = %v, want Healthy", healths[1].State)
	}

	// Heal and recover: the degraded shard rejoins and converges.
	tr.Heal()
	if err := r.TryRecover(); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(p0, 3); err != nil {
		t.Fatalf("shard-0 write after recovery: %v", err)
	}
	r.Heartbeat()
	for s := 0; s < shards; s++ {
		want := engState(t, c, r.engines[s])
		for f := 0; f < followersPer; f++ {
			got := engState(t, c, followers[s*followersPer+f].Engine())
			if len(got) != len(want) {
				t.Fatalf("shard %d follower %d after recovery: %d records, want %d", s, f, len(got), len(want))
			}
		}
	}
}
