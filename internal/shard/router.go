package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/pagedstore"
	"github.com/onioncurve/onion/internal/partition"
	"github.com/onioncurve/onion/internal/ranges"
)

// Stats is the aggregated physical access pattern of one sharded query.
//
// Aggregation contract: shard boundaries are contiguous curve-key
// intervals, so each touched shard executes exactly the part of the plan
// that falls inside its interval against exactly the records whose keys
// fall inside its interval. Its counters are therefore bit-identical to
// what a single engine holding only that shard's records reports for the
// same sub-plan (TestShardedCrossCheck verifies this bit for bit). The
// embedded aggregate is the sum of those per-shard counters:
//
//   - Seeks, PagesRead, RecordsScanned, MemEntries and Segments sum over
//     the touched shards. A cluster range that spans k shard boundaries
//     is executed as k+1 sub-scans, so the aggregate Seeks can exceed a
//     single unpartitioned engine's count by at most the number of
//     boundary crossings — the price of partitioning, made visible
//     rather than hidden.
//   - Planned is the output of the router's single RangePlanner call —
//     the clustering number of the rectangle, identical to the
//     unpartitioned engine's Planned.
//   - Results, and the records themselves, are bit-identical to the
//     unpartitioned engine's: per-shard outputs are ascending in key and
//     shard intervals are ascending, so their concatenation is the
//     globally key-sorted result set.
//   - IO — the physical reads after caching and segment-footer pruning —
//     also sums over shards, but is NOT part of the bit-identical
//     contract: it depends on cache state, which no two stores share.
//
// With a single shard the whole Stats except IO is bit-identical to the
// unpartitioned engine's.
type Stats struct {
	engine.Stats
	// ShardsTouched is the number of shards the plan intersected.
	ShardsTouched int
	// SubRanges is the total number of shard-local ranges after
	// splitting the plan at shard boundaries (>= Planned).
	SubRanges int
	// PerShard is the per-shard breakdown, in ascending shard order,
	// touched shards only.
	PerShard []ShardStats
	// Degraded reports that a QueryPolicy.Partial query skipped one or
	// more failing shards: the result set is missing whatever records
	// those shards held in the queried region. FailedShards lists them.
	// Strict queries never set it — they return the error instead.
	Degraded     bool
	FailedShards []int
}

// ShardStats is one shard's contribution to a query.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	engine.Stats
}

// shardPlan is the part of a query plan one shard executes: the plan's
// ranges clipped to the shard's key interval, still sorted and disjoint.
type shardPlan struct {
	shard int
	krs   []curve.KeyRange
}

// partRef names one shard's sub-plan inside a flat split plan:
// flat[start:end] is the shard-clipped range run it executes.
type partRef struct {
	shard      int
	start, end int
}

// splitPlanFlat splits a sorted disjoint plan at shard boundaries into
// one flat range list plus per-shard slices of it, reusing the supplied
// backing arrays — the allocation-free form the router's pooled query
// state drives. The concatenation of the parts' ranges covers exactly
// the plan's keys, in ascending shard (and key) order.
func splitPlanFlat(part *partition.Partitioner, plan []curve.KeyRange, flat []curve.KeyRange, parts []partRef) ([]curve.KeyRange, []partRef) {
	flat, parts = flat[:0], parts[:0]
	for _, kr := range plan {
		lo := kr.Lo
		for {
			si := part.Of(lo)
			iv, ok := part.Interval(si)
			if !ok {
				// Of returns the shard owning lo, which by construction
				// has a non-empty interval.
				panic(fmt.Sprintf("shard: key %d routed to empty shard %d", lo, si))
			}
			hi := kr.Hi
			if iv.Hi < hi {
				hi = iv.Hi
			}
			flat = append(flat, curve.KeyRange{Lo: lo, Hi: hi})
			if n := len(parts); n > 0 && parts[n-1].shard == si {
				parts[n-1].end = len(flat)
			} else {
				parts = append(parts, partRef{shard: si, start: len(flat) - 1, end: len(flat)})
			}
			if hi >= kr.Hi {
				break
			}
			lo = hi + 1
		}
	}
	return flat, parts
}

// splitPlan splits a sorted disjoint plan at shard boundaries, returning
// each touched shard's sub-plan in ascending shard order (the
// materialized form of splitPlanFlat, kept for tests and callers that
// want owned slices).
func splitPlan(part *partition.Partitioner, plan []curve.KeyRange) []shardPlan {
	flat, parts := splitPlanFlat(part, plan, nil, nil)
	out := make([]shardPlan, len(parts))
	for i, p := range parts {
		out[i] = shardPlan{shard: p.shard, krs: append([]curve.KeyRange{}, flat[p.start:p.end]...)}
	}
	return out
}

// task is one shard sub-query handed to the worker pool: fixed-size, so
// the handoff itself never allocates.
type task struct {
	q *routerQuery
	i int // index into q.parts
}

// routerQuery is the pooled scratch of one fan-out: the plan buffer, the
// flat split plan, the per-part results with their recycled record
// buffers, and the completion group. States recycle through rqPool, so
// the router's steady-state fan-out costs no per-query allocation beyond
// the caller-visible PerShard breakdown.
type routerQuery struct {
	s     *Sharded
	ctx   context.Context
	plan  []curve.KeyRange
	flat  []curve.KeyRange
	parts []partRef
	res   []partResult
	wg    sync.WaitGroup
}

type partResult struct {
	recs []Record // recycled append buffer; n records are this query's
	n    int
	st   engine.Stats
	err  error
}

var rqPool = sync.Pool{New: func() any { return new(routerQuery) }}

// run executes part i against its shard engine, appending into the
// part's recycled record buffer.
func (q *routerQuery) run(i int) {
	p := q.parts[i]
	r := &q.res[i]
	recs, est, err := q.s.engines[p.shard].QueryRangesAppendContext(q.ctx, r.recs[:0], q.flat[p.start:p.end])
	r.recs, r.n, r.st, r.err = recs, len(recs), est, err
}

// Query returns every live record whose point lies inside r together
// with the aggregated access pattern (see Stats for the contract). The
// rectangle is planned ONCE with the curve's range planner; the plan is
// split at shard boundaries and fanned out only to intersecting shards,
// which execute concurrently on the bounded worker pool. Admission
// control: at most Options.MaxInFlight queries execute at a time (later
// calls block for a slot), and a plan longer than
// Options.MaxPlannedRanges is rejected with ErrBudget before touching
// any shard.
func (s *Sharded) Query(r geom.Rect) ([]Record, Stats, error) {
	return s.QueryAppendContext(context.Background(), nil, r, QueryPolicy{})
}

// QueryPolicy selects how a query treats shards that cannot answer.
type QueryPolicy struct {
	// Partial serves what the healthy shards can: a shard whose
	// sub-query fails is skipped, its records are simply absent from the
	// result, Stats.Degraded is set and Stats.FailedShards names it. The
	// query only errors when every touched shard failed, or on
	// cancellation. The zero policy is strict: any shard failure fails
	// the query.
	Partial bool
}

// QueryAppend is Query appending into dst: recycling the same dst across
// queries reuses the record slots and their Point buffers. Stats.Results
// counts only the records this call appended.
//
// Scheduling note: the fan-out hands sub-queries to the worker pool over
// a bounded (one-slot-per-worker) channel, and on GOMAXPROCS=1 the call
// additionally yields the processor once before returning. Together
// these keep a zero-think-time query loop from monopolizing the
// scheduler on a single P — without the yield, the querier and the
// workers bounce each other through the channel rendezvous's wakeup
// fast path and co-resident writer goroutines starve. On multi-core the
// yield is skipped: the starvation cannot occur and the query path
// stays unperturbed.
func (s *Sharded) QueryAppend(dst []Record, r geom.Rect) ([]Record, Stats, error) {
	return s.QueryAppendContext(context.Background(), dst, r, QueryPolicy{})
}

// QueryAppendContext is QueryAppend under a context and an explicit
// failure policy: cancellation interrupts both the admission wait and
// the per-shard scans (each worker checks the context between and —
// amortized — inside ranges), and pol selects strict versus partial
// results when shards fail.
func (s *Sharded) QueryAppendContext(ctx context.Context, dst []Record, r geom.Rect, pol QueryPolicy) ([]Record, Stats, error) {
	rtel := s.rtel
	var start time.Time
	if rtel != nil {
		start = time.Now()
	}
	// Admission: take an in-flight slot before any work; give up if the
	// caller does.
	select {
	case s.admit <- struct{}{}:
	case <-ctx.Done():
		return dst, Stats{}, ctx.Err()
	}
	defer func() { <-s.admit }()
	if rtel != nil {
		rtel.admissionWaitUS.Record(uint64(time.Since(start).Microseconds()))
	}
	if s.yield {
		defer runtime.Gosched()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return dst, Stats{}, ErrClosed
	}
	q := rqPool.Get().(*routerQuery)
	q.s, q.ctx = s, ctx
	// One planner call per query, whatever the fan-out.
	var err error
	q.plan, err = ranges.DecomposeAppend(s.c, r, 0, q.plan)
	if err != nil {
		q.s, q.ctx = nil, nil
		rqPool.Put(q)
		return dst, Stats{}, fmt.Errorf("shard: %w", err)
	}
	var st Stats
	st.Planned = len(q.plan)
	if s.opts.MaxPlannedRanges > 0 && len(q.plan) > s.opts.MaxPlannedRanges {
		planned := len(q.plan)
		q.s, q.ctx = nil, nil
		rqPool.Put(q)
		if rtel != nil {
			rtel.budgetRejects.Inc()
		}
		return dst, st, fmt.Errorf("%w: %d ranges > %d", ErrBudget, planned, s.opts.MaxPlannedRanges)
	}
	q.flat, q.parts = splitPlanFlat(s.part, q.plan, q.flat, q.parts)
	st.ShardsTouched = len(q.parts)
	q.res = q.res[:cap(q.res)]
	for len(q.res) < len(q.parts) {
		q.res = append(q.res, partResult{})
	}
	q.res = q.res[:len(q.parts)]

	// Fan all but the first sub-query out to the pool; run the first on
	// the caller's goroutine, so a single-shard query never waits for a
	// worker and the pool always has a draining goroutine per query.
	for i := 1; i < len(q.parts); i++ {
		q.wg.Add(1)
		s.tasks <- task{q: q, i: i}
	}
	if len(q.parts) > 0 {
		q.run(0)
	}
	q.wg.Wait()

	for i := range q.parts {
		perr := q.res[i].err
		if perr == nil {
			continue
		}
		// Cancellation is never maskable: a partial result under a fired
		// deadline would read as a degraded-but-served answer when it is
		// actually an abandoned one.
		if !pol.Partial || errors.Is(perr, context.Canceled) || errors.Is(perr, context.DeadlineExceeded) {
			err := fmt.Errorf("shard %d: %w", q.parts[i].shard, perr)
			q.s, q.ctx = nil, nil
			rqPool.Put(q)
			if rtel != nil {
				rtel.shardFailures.Inc()
			}
			return dst, st, err
		}
		st.Degraded = true
		st.FailedShards = append(st.FailedShards, q.parts[i].shard)
	}
	if st.Degraded && len(st.FailedShards) == len(q.parts) {
		// Nothing answered; "partial" would be an empty lie.
		err := fmt.Errorf("shard %d: %w", q.parts[0].shard, q.res[0].err)
		q.s, q.ctx = nil, nil
		rqPool.Put(q)
		return dst, st, err
	}
	st.SubRanges = len(q.flat)
	base := len(dst)
	st.PerShard = make([]ShardStats, 0, len(q.parts))
	for i, p := range q.parts {
		res := &q.res[i]
		if res.err != nil {
			continue
		}
		for j := 0; j < res.n; j++ {
			dst = pagedstore.AppendRecord(dst, res.recs[j].Point, res.recs[j].Payload)
		}
		st.PerShard = append(st.PerShard, ShardStats{Shard: p.shard, Stats: res.st})
		st.Seeks += res.st.Seeks
		st.PagesRead += res.st.PagesRead
		st.RecordsScanned += res.st.RecordsScanned
		st.MemEntries += res.st.MemEntries
		st.Segments += res.st.Segments
		st.IO.Add(res.st.IO)
	}
	st.Results = len(dst) - base
	q.s, q.ctx = nil, nil
	rqPool.Put(q)
	if rtel != nil {
		rtel.queries.Inc()
		rtel.queryLatencyUS.Record(uint64(time.Since(start).Microseconds()))
		rtel.fanoutShards.Record(uint64(st.ShardsTouched))
		rtel.subRanges.Record(uint64(st.SubRanges))
		if st.Degraded {
			rtel.partialQueries.Inc()
			rtel.shardFailures.Add(uint64(len(st.FailedShards)))
		}
	}
	return dst, st, nil
}
