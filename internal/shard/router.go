package shard

import (
	"fmt"
	"sync"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/partition"
	"github.com/onioncurve/onion/internal/ranges"
)

// Stats is the aggregated physical access pattern of one sharded query.
//
// Aggregation contract: shard boundaries are contiguous curve-key
// intervals, so each touched shard executes exactly the part of the plan
// that falls inside its interval against exactly the records whose keys
// fall inside its interval. Its counters are therefore bit-identical to
// what a single engine holding only that shard's records reports for the
// same sub-plan (TestShardedCrossCheck verifies this bit for bit). The
// embedded aggregate is the sum of those per-shard counters:
//
//   - Seeks, PagesRead, RecordsScanned, MemEntries and Segments sum over
//     the touched shards. A cluster range that spans k shard boundaries
//     is executed as k+1 sub-scans, so the aggregate Seeks can exceed a
//     single unpartitioned engine's count by at most the number of
//     boundary crossings — the price of partitioning, made visible
//     rather than hidden.
//   - Planned is the output of the router's single RangePlanner call —
//     the clustering number of the rectangle, identical to the
//     unpartitioned engine's Planned.
//   - Results, and the records themselves, are bit-identical to the
//     unpartitioned engine's: per-shard outputs are ascending in key and
//     shard intervals are ascending, so their concatenation is the
//     globally key-sorted result set.
//
// With a single shard the whole Stats is bit-identical to the
// unpartitioned engine's.
type Stats struct {
	engine.Stats
	// ShardsTouched is the number of shards the plan intersected.
	ShardsTouched int
	// SubRanges is the total number of shard-local ranges after
	// splitting the plan at shard boundaries (>= Planned).
	SubRanges int
	// PerShard is the per-shard breakdown, in ascending shard order,
	// touched shards only.
	PerShard []ShardStats
}

// ShardStats is one shard's contribution to a query.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	engine.Stats
}

// shardPlan is the part of a query plan one shard executes: the plan's
// ranges clipped to the shard's key interval, still sorted and disjoint.
type shardPlan struct {
	shard int
	krs   []curve.KeyRange
}

// splitPlan splits a sorted disjoint plan at shard boundaries, returning
// each touched shard's sub-plan in ascending shard order. The
// concatenation of the sub-plans' ranges covers exactly the plan's keys.
func splitPlan(part *partition.Partitioner, plan []curve.KeyRange) []shardPlan {
	var out []shardPlan
	for _, kr := range plan {
		lo := kr.Lo
		for {
			si := part.Of(lo)
			iv, ok := part.Interval(si)
			if !ok {
				// Of returns the shard owning lo, which by construction
				// has a non-empty interval.
				panic(fmt.Sprintf("shard: key %d routed to empty shard %d", lo, si))
			}
			hi := kr.Hi
			if iv.Hi < hi {
				hi = iv.Hi
			}
			sub := curve.KeyRange{Lo: lo, Hi: hi}
			if n := len(out); n > 0 && out[n-1].shard == si {
				out[n-1].krs = append(out[n-1].krs, sub)
			} else {
				out = append(out, shardPlan{shard: si, krs: []curve.KeyRange{sub}})
			}
			if hi >= kr.Hi {
				break
			}
			lo = hi + 1
		}
	}
	return out
}

// Query returns every live record whose point lies inside r together
// with the aggregated physical access pattern (see Stats for the
// contract). The rectangle is planned ONCE with the curve's range
// planner; the plan is split at shard boundaries and fanned out only to
// intersecting shards, which execute concurrently on the bounded worker
// pool. Admission control: at most Options.MaxInFlight queries execute
// at a time (later calls block for a slot), and a plan longer than
// Options.MaxPlannedRanges is rejected with ErrBudget before touching
// any shard.
func (s *Sharded) Query(r geom.Rect) ([]Record, Stats, error) {
	// Admission: take an in-flight slot before any work.
	s.admit <- struct{}{}
	defer func() { <-s.admit }()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, Stats{}, ErrClosed
	}
	// One planner call per query, whatever the fan-out.
	plan, err := ranges.Decompose(s.c, r, 0)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("shard: %w", err)
	}
	var st Stats
	st.Planned = len(plan)
	if s.opts.MaxPlannedRanges > 0 && len(plan) > s.opts.MaxPlannedRanges {
		return nil, st, fmt.Errorf("%w: %d ranges > %d", ErrBudget, len(plan), s.opts.MaxPlannedRanges)
	}
	parts := splitPlan(s.part, plan)
	st.ShardsTouched = len(parts)

	type result struct {
		recs []Record
		st   engine.Stats
		err  error
	}
	results := make([]result, len(parts))
	var wg sync.WaitGroup
	run := func(i int) {
		recs, est, err := s.engines[parts[i].shard].QueryRanges(parts[i].krs)
		results[i] = result{recs: recs, st: est, err: err}
	}
	// Fan all but the first sub-query out to the pool; run the first on
	// the caller's goroutine, so a single-shard query never waits for a
	// worker and the pool always has a draining goroutine per query.
	for i := 1; i < len(parts); i++ {
		wg.Add(1)
		i := i
		s.tasks <- func() {
			defer wg.Done()
			run(i)
		}
	}
	if len(parts) > 0 {
		run(0)
	}
	wg.Wait()

	total := 0
	for i, p := range parts {
		if results[i].err != nil {
			return nil, st, fmt.Errorf("shard %d: %w", p.shard, results[i].err)
		}
		total += len(results[i].recs)
		st.SubRanges += len(p.krs)
	}
	out := make([]Record, 0, total)
	st.PerShard = make([]ShardStats, len(parts))
	for i, p := range parts {
		est := results[i].st
		out = append(out, results[i].recs...)
		st.PerShard[i] = ShardStats{Shard: p.shard, Stats: est}
		st.Seeks += est.Seeks
		st.PagesRead += est.PagesRead
		st.RecordsScanned += est.RecordsScanned
		st.MemEntries += est.MemEntries
		st.Segments += est.Segments
	}
	st.Results = len(out)
	return out, st, nil
}
