package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/ingest"
)

// TestShardedIngestCrossCheck: concurrent producers through the striped
// async pipeline against the same op log applied serially through the
// router's synchronous Put/Delete — the sharded variant of the ingest
// cross-check. Per-key order is preserved by partitioning producers on
// curve key, so the full-rectangle query results (which merge every
// shard) must be record-for-record identical: a misrouted key would show
// up as a duplicate or a stale survivor.
func TestShardedIngestCrossCheck(t *testing.T) {
	c, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			ref, err := Open(t.TempDir(), c, manualShardOpts(shards))
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			s, err := Open(t.TempDir(), c, manualShardOpts(shards))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			p, err := s.NewIngest(ingest.Config{Ring: 64, MaxBatch: 16})
			if err != nil {
				t.Fatal(err)
			}

			// One deterministic op log with recurring keys and deletes;
			// the serial reference applies it in order, the pipeline's
			// producers each own the keys congruent to their id.
			type sop struct {
				key uint64
				pay uint64
				del bool
			}
			u := c.Universe()
			ops := make([]sop, 0, 800)
			for i := 0; i < 800; i++ {
				key := uint64(i*31+7) % u.Size()
				if i%7 == 6 {
					ops = append(ops, sop{key: uint64(i*31+7-3*31) % u.Size(), del: true})
				} else {
					ops = append(ops, sop{key: key, pay: uint64(10_000 + i)})
				}
			}
			pts := make([]Record, len(ops))
			for i := range ops {
				pts[i].Point = c.Coords(ops[i].key, nil)
			}
			for i, op := range ops {
				var err error
				if op.del {
					err = ref.Delete(pts[i].Point)
				} else {
					err = ref.Put(pts[i].Point, op.pay)
				}
				if err != nil {
					t.Fatalf("serial op %d: %v", i, err)
				}
			}

			ctx := context.Background()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i, op := range ops {
						if int(op.key%uint64(workers)) != w {
							continue
						}
						var err error
						if op.del {
							err = p.Delete(ctx, pts[i].Point)
						} else {
							err = p.Put(ctx, pts[i].Point, op.pay)
						}
						if err != nil {
							t.Errorf("producer %d op %d: %v", w, i, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if err := p.Close(); err != nil {
				t.Fatalf("pipeline close: %v", err)
			}

			full := u.Rect()
			want, _, err := ref.Query(full)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := s.Query(full)
			if err != nil {
				t.Fatal(err)
			}
			equalRecords(t, full, got, want)

			snap := p.Telemetry().Snapshot()
			if enq, acked := snap.Counter("ingest_enqueued_total"), snap.Counter("ingest_acked_total"); enq != acked || enq == 0 {
				t.Fatalf("telemetry: enqueued %d, acked %d", enq, acked)
			}
		})
	}
}

// TestShardedIngestClosedService: batches hitting a closed service fail
// cleanly through the handles instead of panicking or hanging.
func TestShardedIngestClosedService(t *testing.T) {
	c, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(t.TempDir(), c, manualShardOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.NewIngest(ingest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	err = p.Put(context.Background(), c.Coords(1, nil), 1)
	if err == nil {
		t.Fatal("Put into closed service acked")
	}
	if perr := p.Close(); perr == nil {
		t.Fatal("pipeline close after failed batches = nil, want the sticky error")
	}
}
