package shard

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/telemetry"
)

// TestShardedTelemetryRollup drives a two-shard store through writes,
// queries and the full maintenance lifecycle, then checks the roll-up
// contract: every aggregate equals the sum (or merge) of its per-shard
// labeled copies, the shared cache is exported exactly once, and the
// merged event stream is time-ordered with Shard rewritten.
func TestShardedTelemetryRollup(t *testing.T) {
	c, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, err := Open(dir, c, manualShardOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for x := uint32(0); x < 32; x += 2 {
		for y := uint32(0); y < 32; y += 2 {
			if err := s.Put(geom.Point{x, y}, uint64(x)<<8|uint64(y)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for x := uint32(1); x < 32; x += 4 {
		if err := s.Put(geom.Point{x, x}, uint64(x)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(filepath.Join(t.TempDir(), "snap")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := s.Query(geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{31, 31}}); err != nil {
			t.Fatal(err)
		}
	}

	snap := s.TelemetrySnapshot()

	// Counter roll-up: aggregate == sum of labeled per-shard copies, and
	// the underlying activity actually happened.
	for _, name := range []string{
		"engine_flushes_total", "engine_compactions_total",
		"engine_wal_appends_total", "engine_queries_total",
		"engine_verify_passes_total", "engine_snapshots_total",
	} {
		agg := snap.Counter(name)
		sum := snap.Counter(telemetry.WithLabel(name, "shard", "0")) +
			snap.Counter(telemetry.WithLabel(name, "shard", "1"))
		if agg == 0 {
			t.Errorf("%s: aggregate is 0, expected activity", name)
		}
		if agg != sum {
			t.Errorf("%s: aggregate %d != per-shard sum %d", name, agg, sum)
		}
	}

	// Histogram roll-up: merged count and sum equal the per-shard totals.
	aggH := snap.Hist("engine_query_latency_us")
	if aggH == nil {
		t.Fatal("missing engine_query_latency_us aggregate")
	}
	h0 := snap.Hist(`engine_query_latency_us{shard="0"}`)
	h1 := snap.Hist(`engine_query_latency_us{shard="1"}`)
	if h0 == nil || h1 == nil {
		t.Fatal("missing per-shard latency histograms")
	}
	if aggH.Count != h0.Count+h1.Count || aggH.Sum != h0.Sum+h1.Sum {
		t.Errorf("latency roll-up: count %d vs %d+%d, sum %d vs %d+%d",
			aggH.Count, h0.Count, h1.Count, aggH.Sum, h0.Sum, h1.Sum)
	}

	// The shared page cache belongs to the router: exported once, never
	// multiplied through the per-shard roll-up.
	if _, ok := snap.Metric("cache_hits_total"); !ok {
		t.Error("shared cache_hits_total missing from router registry")
	}
	if _, ok := snap.Metric(`cache_hits_total{shard="0"}`); ok {
		t.Error("shared cache exported per-shard: roll-up would double-count it")
	}
	if snap.Counter("cache_hits_total")+snap.Counter("cache_misses_total") == 0 {
		t.Error("cache counters flat after cached queries")
	}

	// Router-level series exist and saw the traffic.
	if got := snap.Counter("router_queries_total"); got < 8 {
		t.Errorf("router_queries_total = %d, want >= 8", got)
	}
	if h := snap.Hist("router_fanout_shards"); h == nil || h.Count == 0 {
		t.Error("router_fanout_shards histogram empty")
	}

	// Event merge: Shard rewritten to the owning index, time-ordered, and
	// the lifecycle left at least one flush, compaction and scrub event.
	if len(snap.Events) == 0 {
		t.Fatal("merged event stream is empty")
	}
	seen := map[telemetry.EventKind]bool{}
	for i, ev := range snap.Events {
		if ev.Shard < 0 || ev.Shard >= 2 {
			t.Fatalf("event %d: Shard = %d, want 0 or 1", i, ev.Shard)
		}
		if i > 0 && ev.Time.Before(snap.Events[i-1].Time) {
			t.Fatalf("event %d out of time order", i)
		}
		seen[ev.Kind] = true
	}
	for _, k := range []telemetry.EventKind{telemetry.EvFlush, telemetry.EvCompaction, telemetry.EvScrub, telemetry.EvSnapshot} {
		if !seen[k] {
			t.Errorf("no %s event in merged stream", k)
		}
	}

	// The exporters accept the roll-up: labeled series render as valid
	// Prometheus text (one TYPE line per base name) and JSON.
	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	if !strings.Contains(out, `engine_flushes_total{shard="0"}`) {
		t.Error("Prometheus output missing labeled per-shard series")
	}
	if got := strings.Count(out, "# TYPE engine_flushes_total "); got != 1 {
		t.Errorf("TYPE line for engine_flushes_total appears %d times, want 1", got)
	}
	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "router_queries_total") {
		t.Error("JSON output missing router series")
	}
}
