// Package shard is the horizontally partitioned query service built on
// the storage engine: it splits a curve's key space into contiguous
// intervals with an internal/partition Uniform partitioner and runs one
// independent engine.Engine per interval — per-shard WAL, memtable,
// segments, flush and compaction — so durability and crash recovery
// compose shard by shard from the engine's guarantees.
//
// Writes route by curve key to exactly one shard. A rectangle query is
// planned exactly once with the curve's RangePlanner; the resulting
// cluster ranges are split at shard boundaries and fanned out only to the
// shards whose key intervals they intersect, executed concurrently on a
// bounded worker pool behind admission control (a cap on in-flight
// queries and a per-query planned-range budget), and the per-shard record
// streams and physical stats are aggregated.
//
// Because shard boundaries are aligned to curve-key intervals, the
// concatenation of the per-shard outputs in shard order is globally
// sorted by curve key and bit-identical to the record set a single engine
// holding the same data returns. The stat aggregation contract is
// documented on Stats: each shard's counters are bit-identical to a
// single engine holding exactly that shard's records executing the
// shard-restricted sub-plan, and the aggregate is their sum.
package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/pagedstore"
	"github.com/onioncurve/onion/internal/partition"
	"github.com/onioncurve/onion/internal/telemetry"
	"github.com/onioncurve/onion/internal/vfs"
)

var (
	// ErrClosed reports use of a closed sharded engine.
	ErrClosed = errors.New("shard: closed")
	// ErrBudget reports a query whose plan exceeds the configured
	// per-query range budget (admission control rejected it; retry with a
	// smaller rectangle or a higher Options.MaxPlannedRanges).
	ErrBudget = errors.New("shard: query exceeds planned-range budget")
	// ErrManifest reports a shard directory opened with a configuration
	// (shard count, curve) different from the one it was created with.
	ErrManifest = errors.New("shard: directory manifest mismatch")
)

// Options tunes a sharded engine. The zero value selects the defaults.
type Options struct {
	// Shards is the number of key-space partitions, each served by an
	// independent engine (default GOMAXPROCS). The count is recorded in
	// the directory manifest and must match on reopen: records live in
	// the shard that owns their key, so silently changing the partition
	// would misroute queries.
	Shards int
	// Engine tunes every per-shard engine (page size, flush threshold,
	// WAL sync policy, memtable shards, compaction fanout).
	Engine engine.Options
	// Workers bounds how many per-shard sub-queries execute concurrently
	// across all in-flight queries (default GOMAXPROCS).
	Workers int
	// MaxInFlight is the admission-control cap on concurrently admitted
	// queries; further Query calls block until a slot frees (default
	// 2 * Workers).
	MaxInFlight int
	// MaxPlannedRanges rejects queries whose single planner call yields
	// more than this many cluster ranges with ErrBudget — a per-query
	// cost ceiling, since ranges are seeks. 0 disables the budget.
	MaxPlannedRanges int
	// CacheBytes gives every shard engine ONE shared page cache with
	// this byte budget (0 disables caching; ignored when Engine.Cache is
	// already set). Sharing one cache makes the budget a service-level
	// knob: hot shards naturally claim more of it. Caching changes only
	// physical I/O — the logical stat contracts hold bit-identically
	// with the cache on or off.
	CacheBytes int64
	// FS is the filesystem the manifest and every shard engine live on.
	// Nil selects the real filesystem; fault-injection tests pass a
	// vfs.Injecting. (Engine.FS, when set, still wins for the engines.)
	FS vfs.FS
	// CommitHook, when set, installs a per-shard commit hook into each
	// shard engine (overriding Engine.CommitHook): shard i's engine gets
	// CommitHook(i). This is the seam OpenReplicated threads per-shard
	// replication through; it is exported so other write-path observers
	// can ride the same hook without a second Options field.
	CommitHook func(shard int) engine.CommitHook
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 2 * o.Workers
	}
	return o
}

// Record is one stored point with an opaque payload (the engine type).
type Record = engine.Record

// EngineStats is a point-in-time summary of a sharded engine's shape:
// the per-shard engine summaries plus their totals.
type EngineStats struct {
	// PerShard holds each shard's engine summary, in shard order.
	PerShard []engine.EngineStats
	// Totals across shards.
	MemEntries     int64
	ImmMemtables   int
	Segments       int
	SegmentRecords int
	WALBytes       int64
	Flushes        uint64
	Compactions    uint64
}

// Sharded is a partition-aware sharded storage engine with a concurrent
// query router. All methods are safe for concurrent use.
type Sharded struct {
	c       curve.Curve
	part    *partition.Partitioner
	engines []*engine.Engine
	opts    Options
	cache   *pagedstore.Cache // shared across shard engines; nil when disabled

	reg  *telemetry.Registry // router-level metrics (fan-out, admission, shared cache)
	rtel *routerTelemetry

	tasks   chan task // bounded worker pool feed
	workers sync.WaitGroup
	admit   chan struct{} // admission slots, one per in-flight query
	yield   bool          // GOMAXPROCS==1 at Open: yield after each query

	mu     sync.RWMutex // held shared by every operation; exclusively by Close
	closed bool
}

// Open opens (creating if needed) the sharded engine rooted at dir,
// clustered by c. Shard i's engine lives in dir/shard-<i> and recovers
// independently: a crash affects only the shards it interrupted. The
// shard count and curve identity are recorded in dir/MANIFEST on first
// open and verified afterwards.
func Open(dir string, c curve.Curve, opts Options) (*Sharded, error) {
	opts = opts.withDefaults()
	fsys := vfs.Or(opts.FS)
	part, err := partition.Uniform(c, opts.Shards)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if err := checkOrWriteManifest(fsys, dir, c, opts.Shards); err != nil {
		return nil, err
	}
	s := &Sharded{
		c:    c,
		part: part,
		opts: opts,
		// The end-of-query yield (see QueryAppend) is only needed where
		// the starvation exists: with a single P, a zero-think-time
		// query loop and the router's channel wakeups can monopolize the
		// scheduler. On multi-core it would just tax the hot path.
		yield: runtime.GOMAXPROCS(0) == 1,
	}
	// One page cache for every shard engine: a single byte budget over
	// the whole service, populated by whichever shards run hot.
	engOpts := opts.Engine
	if engOpts.Cache == nil && opts.CacheBytes > 0 {
		engOpts.Cache = pagedstore.NewCache(opts.CacheBytes)
	}
	if engOpts.FS == nil {
		engOpts.FS = opts.FS
	}
	s.cache = engOpts.Cache
	for i := 0; i < opts.Shards; i++ {
		if opts.CommitHook != nil {
			engOpts.CommitHook = opts.CommitHook(i)
		}
		e, err := engine.Open(shardDir(dir, i), c, engOpts)
		if err != nil {
			for _, open := range s.engines {
				open.Close() //nolint:errcheck
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.engines = append(s.engines, e)
	}
	// The feed is buffered one task per worker: a bounded handoff, so a
	// fan-out burst parks the querier at most once instead of once per
	// direct channel rendezvous (see Query's scheduling note).
	s.tasks = make(chan task, opts.Workers)
	s.admit = make(chan struct{}, opts.MaxInFlight)
	s.reg = telemetry.NewRegistry()
	s.rtel = newRouterTelemetry(s.reg)
	s.registerRouterTelemetry(opts.Engine.Cache == nil && s.cache != nil)
	for i := 0; i < opts.Workers; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for t := range s.tasks {
				t.q.run(t.i)
				t.q.wg.Done()
			}
		}()
	}
	return s, nil
}

// CacheStats summarizes the shared page cache across every shard engine
// (zero when caching is disabled).
func (s *Sharded) CacheStats() pagedstore.CacheStats {
	if s.cache == nil {
		return pagedstore.CacheStats{}
	}
	return s.cache.Stats()
}

func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

const manifestName = "MANIFEST"

// manifestBody renders the configuration identity of a shard directory.
// The universe is part of it (the same curve family at a different side
// has a different key space), and so is a fingerprint of the actual
// bijection: the curve's name alone cannot distinguish variants of one
// family — every Onion3D segment permutation is named "onion" — but the
// cells at eight keys spread across the key range do.
func manifestBody(c curve.Curve, shards int) string {
	u := c.Universe()
	n := u.Size()
	probe := ""
	p := make(geom.Point, u.Dims())
	for j := uint64(0); j < 8; j++ {
		c.Coords(j*(n-1)/7, p)
		probe += fmt.Sprintf(" %v", p)
	}
	return fmt.Sprintf("onion-sharded v1\nshards %d\ncurve %s\ndims %d\nside %d\nprobe%s\n",
		shards, c.Name(), u.Dims(), u.Side(), probe)
}

// checkOrWriteManifest verifies an existing manifest against the opening
// configuration, or durably creates one for a fresh directory. The write
// is tmp + fsync + rename + directory fsync, so a crash at any point
// leaves either no manifest (next open recreates it) or the complete one
// — never a torn prefix that would spuriously fail the identity check.
func checkOrWriteManifest(fsys vfs.FS, dir string, c curve.Curve, shards int) error {
	path := filepath.Join(dir, manifestName)
	want := manifestBody(c, shards)
	if data, err := vfs.ReadFile(fsys, path); err == nil {
		if string(data) != want {
			return fmt.Errorf("%w: directory records %q, opening with %q",
				ErrManifest, string(data), want)
		}
		return nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("shard: %w", err)
	}
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if _, err := f.Write([]byte(want)); err != nil {
		f.Close()
		return fmt.Errorf("shard: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shard: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.engines) }

// Put inserts or overwrites the record at point p in the shard owning its
// curve key. Durability is the owning engine's: acknowledged after WAL
// append (and fsync with Options.Engine.SyncWrites).
func (s *Sharded) Put(p geom.Point, payload uint64) error {
	return s.write(p, payload, false)
}

// Delete removes the record at point p (a blind tombstone in the owning
// shard; deleting an absent point is not an error).
func (s *Sharded) Delete(p geom.Point) error {
	return s.write(p, 0, true)
}

func (s *Sharded) write(p geom.Point, payload uint64, del bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if !s.c.Universe().Contains(p) {
		return fmt.Errorf("%w: %v in %v", engine.ErrPoint, p, s.c.Universe())
	}
	e := s.engines[s.part.Of(s.c.Index(p))]
	if del {
		return e.Delete(p)
	}
	return e.Put(p, payload)
}

// each runs fn on every shard engine concurrently and returns the first
// error (by shard order).
func (s *Sharded) each(fn func(*engine.Engine) error) error {
	errs := make([]error, len(s.engines))
	var wg sync.WaitGroup
	for i, e := range s.engines {
		wg.Add(1)
		go func(i int, e *engine.Engine) {
			defer wg.Done()
			errs[i] = fn(e)
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Sync makes every previously acknowledged write durable on every shard.
func (s *Sharded) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return s.each((*engine.Engine).Sync)
}

// Flush freezes and writes out every shard's active memtable. Shards
// flush concurrently and independently.
func (s *Sharded) Flush() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return s.each((*engine.Engine).Flush)
}

// Compact fully compacts every shard: afterwards each shard's disk state
// is a single curve-ordered segment of exactly its live records.
func (s *Sharded) Compact() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return s.each((*engine.Engine).Compact)
}

// BackgroundErr returns the most recent background flush/compaction error
// across shards, or nil when every shard's last background cycle
// succeeded.
func (s *Sharded) BackgroundErr() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for _, e := range s.engines {
		if err := e.BackgroundErr(); err != nil {
			return err
		}
	}
	return nil
}

// ShardHealth is one shard's degradation state (see engine.Health for
// the state machine) and the error that drove it there.
type ShardHealth struct {
	Shard int
	State engine.Health
	Err   error
}

// Health reports every shard's degradation state, in shard order. A
// sharded service degrades shard by shard: a shard in ReadOnly rejects
// writes routed to it while the others keep accepting, and queries keep
// serving from every shard that still can.
func (s *Sharded) Health() []ShardHealth {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ShardHealth, len(s.engines))
	for i, e := range s.engines {
		st, err := e.Health()
		out[i] = ShardHealth{Shard: i, State: st, Err: err}
	}
	return out
}

// Verify scrubs every shard's segments against their checksums (see
// engine.Verify), quarantining any that fail. The per-shard reports come
// back in shard order; the first hard verification error (not a
// quarantine — those are reported, not returned) is the error.
func (s *Sharded) Verify() ([]engine.VerifyReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	reps := make([]engine.VerifyReport, len(s.engines))
	var firstErr error
	for i, e := range s.engines {
		rep, err := e.Verify()
		reps[i] = rep
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return reps, firstErr
}

// Stats returns a point-in-time summary of every shard plus totals.
func (s *Sharded) Stats() EngineStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := EngineStats{PerShard: make([]engine.EngineStats, len(s.engines))}
	if s.closed {
		return st
	}
	for i, e := range s.engines {
		es := e.Stats()
		st.PerShard[i] = es
		st.MemEntries += es.MemEntries
		st.ImmMemtables += es.ImmMemtables
		st.Segments += es.Segments
		st.SegmentRecords += es.SegmentRecords
		st.WALBytes += es.WALBytes
		st.Flushes += es.Flushes
		st.Compactions += es.Compactions
	}
	return st
}

// Close flushes and closes every shard engine and stops the router's
// worker pool. The sharded engine is unusable afterwards; reopen with
// Open.
func (s *Sharded) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.mu.Unlock()
	close(s.tasks)
	s.workers.Wait()
	var firstErr error
	for _, e := range s.engines {
		if err := e.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
