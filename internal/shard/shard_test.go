package shard

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/curvetest"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/pagedstore"
	"github.com/onioncurve/onion/internal/partition"
	"github.com/onioncurve/onion/internal/ranges"
)

// manualShardOpts disables background flush/compaction in every shard so
// tests control the lifecycle explicitly.
func manualShardOpts(k int) Options {
	return Options{
		Shards:  k,
		Engine:  engine.Options{PageBytes: 512, FlushEntries: -1, CompactFanout: -1, Shards: 2},
		Workers: 4,
		// A deliberately tiny shared page cache (16 pages across all
		// shards) so the cross-checks run under constant eviction
		// pressure: the logical stat contracts must hold bit-identically
		// with caching and segment-footer pruning active.
		CacheBytes: 16 * 512,
	}
}

// randomRect delegates to the shared curvetest helper.
var randomRect = curvetest.RandomRect

// logicalEqual compares two engine stat sets on the bit-identical
// logical contract, ignoring the physical IO counters — those depend on
// cache state, which the sharded and reference engines do not share.
func logicalEqual(a, b engine.Stats) bool {
	a.IO, b.IO = pagedstore.IOStats{}, pagedstore.IOStats{}
	return a == b
}

// putDeleter is the write surface shared by *engine.Engine and *Sharded,
// so the same operation log can drive both sides of the cross-check.
type putDeleter interface {
	Put(geom.Point, uint64) error
	Delete(geom.Point) error
}

// ownerPrograms runs nWriters concurrent goroutines, each owning the
// disjoint subset of cells whose curve key is congruent to its id modulo
// nWriters, and applying a seeded random put/delete program to them — so
// the final per-cell state is deterministic regardless of scheduling, and
// replaying the same seeds against another store yields the same state.
func ownerPrograms(t *testing.T, w putDeleter, c curve.Curve, seed int64, nWriters, steps int) map[uint64]*pagedstore.Record {
	t.Helper()
	u := c.Universe()
	d := u.Dims()
	var wg sync.WaitGroup
	results := make([]map[uint64]*pagedstore.Record, nWriters)
	errs := make([]error, nWriters)
	for g := 0; g < nWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)))
			final := make(map[uint64]*pagedstore.Record)
			for s := 0; s < steps; s++ {
				key := uint64(rng.Int63n(int64(u.Size())))
				key -= key % uint64(nWriters)
				key += uint64(g)
				if key >= u.Size() {
					continue
				}
				pt := c.Coords(key, make(geom.Point, d))
				if rng.Intn(4) == 0 {
					if err := w.Delete(pt); err != nil {
						errs[g] = err
						return
					}
					final[key] = nil
				} else {
					payload := rng.Uint64()
					if err := w.Put(pt, payload); err != nil {
						errs[g] = err
						return
					}
					final[key] = &pagedstore.Record{Point: pt.Clone(), Payload: payload}
				}
			}
			results[g] = final
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	finals := make(map[uint64]*pagedstore.Record)
	for _, m := range results {
		for k, r := range m {
			finals[k] = r
		}
	}
	return finals
}

func mergeFinals(survivors map[uint64]pagedstore.Record, finals map[uint64]*pagedstore.Record) {
	for k, r := range finals {
		if r != nil {
			survivors[k] = *r
		} else {
			delete(survivors, k)
		}
	}
}

func equalRecords(t *testing.T, r geom.Rect, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%v: %d records, want %d", r, len(got), len(want))
	}
	for i := range want {
		if !got[i].Point.Equal(want[i].Point) || got[i].Payload != want[i].Payload {
			t.Fatalf("%v: record %d = %v/%d, want %v/%d",
				r, i, got[i].Point, got[i].Payload, want[i].Point, want[i].Payload)
		}
	}
}

// cursorStats drives a pagedstore cursor over a sub-plan exactly the way
// a fully compacted shard engine does, returning the surviving record
// count and the physical stats.
func cursorStats(t *testing.T, st *pagedstore.Store, krs []curve.KeyRange) (int, pagedstore.Stats) {
	t.Helper()
	cur := st.NewCursor()
	n := 0
	for _, kr := range krs {
		cur.SeekRange(kr)
		for {
			_, marked, ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if !marked {
				n++
			}
		}
	}
	return n, cur.Stats()
}

// TestShardedCrossCheck is the acceptance criterion: under concurrent
// Put/Delete/Query churn, a sharded engine must answer every rectangle
// with records bit-identical to a single engine fed the same operation
// log, for shard counts 1, 2, 3 and 8; the aggregate stats must satisfy
// the documented summation contract (Planned, Results and MemEntries
// exactly equal to the single engine; with one shard the entire Stats is
// bit-identical); and after full compaction every per-shard counter must
// be bit-identical to a reference store holding exactly that shard's
// records executing the shard-restricted sub-plan.
func TestShardedCrossCheck(t *testing.T) {
	curves := []struct {
		name string
		mk   func() (curve.Curve, error)
	}{
		{"onion2d", func() (curve.Curve, error) { return core.NewOnion2D(32) }},
		{"onion3d", func() (curve.Curve, error) { return core.NewOnion3D(16) }},
		{"hilbert", func() (curve.Curve, error) { return baseline.NewHilbert(2, 32) }},
	}
	for ci, tc := range curves {
		for _, k := range []int{1, 2, 3, 8} {
			t.Run(tc.name+"/k="+string(rune('0'+k)), func(t *testing.T) {
				c, err := tc.mk()
				if err != nil {
					t.Fatal(err)
				}
				s, err := Open(t.TempDir(), c, manualShardOpts(k))
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				single, err := engine.Open(t.TempDir(), c, manualShardOpts(k).Engine)
				if err != nil {
					t.Fatal(err)
				}
				defer single.Close()

				// Identical operation logs: the ownership programs are
				// deterministic per seed, so replaying the same seeds on
				// both stores converges to the same per-cell state. A
				// concurrent reader hammers the sharded side meanwhile.
				stop := make(chan struct{})
				var readers sync.WaitGroup
				readers.Add(1)
				go func() {
					defer readers.Done()
					rng := rand.New(rand.NewSource(int64(999)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						// No yield needed even on GOMAXPROCS=1: the router's
						// bounded handoff + end-of-query yield keep this
						// zero-think-time loop from starving the writers.
						if _, _, err := s.Query(randomRect(rng, c.Universe())); err != nil {
							t.Error(err)
							return
						}
					}
				}()
				seed1, seed2 := int64(3000+10*ci+k), int64(4000+10*ci+k)
				survivors := make(map[uint64]pagedstore.Record)
				mergeFinals(survivors, ownerPrograms(t, s, c, seed1, 4, 500))
				ownerPrograms(t, single, c, seed1, 4, 500)
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := single.Flush(); err != nil {
					t.Fatal(err)
				}
				mergeFinals(survivors, ownerPrograms(t, s, c, seed2, 4, 250))
				ownerPrograms(t, single, c, seed2, 4, 250)
				close(stop)
				readers.Wait()
				if t.Failed() {
					return
				}

				rng := rand.New(rand.NewSource(int64(17*ci + k)))
				// Phase A: mixed memtable + segment state.
				for trial := 0; trial < 20; trial++ {
					r := randomRect(rng, c.Universe())
					got, gst, err := s.Query(r)
					if err != nil {
						t.Fatal(err)
					}
					want, wst, err := single.Query(r)
					if err != nil {
						t.Fatal(err)
					}
					equalRecords(t, r, got, want)
					if gst.Planned != wst.Planned || gst.Results != wst.Results ||
						gst.MemEntries != wst.MemEntries {
						t.Fatalf("%v: aggregate %+v vs single %+v", r, gst.Stats, wst)
					}
					if k == 1 && !logicalEqual(gst.Stats, wst) {
						t.Fatalf("%v: single-shard stats %+v != engine stats %+v", r, gst.Stats, wst)
					}
				}

				// Phase B: fully compacted. Each shard is now one segment,
				// bit-identical to a bulk-loaded store of its records.
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := s.Compact(); err != nil {
					t.Fatal(err)
				}
				if err := single.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := single.Compact(); err != nil {
					t.Fatal(err)
				}
				refs := make([]*pagedstore.Store, k)
				refDir := t.TempDir()
				for i := 0; i < k; i++ {
					var recs []pagedstore.Record
					for key, rec := range survivors {
						if s.part.Of(key) == i {
							recs = append(recs, rec)
						}
					}
					path := filepath.Join(refDir, "ref-"+string(rune('0'+i))+".pst")
					if err := pagedstore.Write(path, c, recs, 512); err != nil {
						t.Fatal(err)
					}
					if refs[i], err = pagedstore.Open(path, c); err != nil {
						t.Fatal(err)
					}
					defer refs[i].Close()
				}
				for trial := 0; trial < 20; trial++ {
					r := randomRect(rng, c.Universe())
					got, gst, err := s.Query(r)
					if err != nil {
						t.Fatal(err)
					}
					want, wst, err := single.Query(r)
					if err != nil {
						t.Fatal(err)
					}
					equalRecords(t, r, got, want)
					if gst.Planned != wst.Planned || gst.Results != wst.Results {
						t.Fatalf("%v: aggregate %+v vs single %+v", r, gst.Stats, wst)
					}
					if k == 1 && !logicalEqual(gst.Stats, wst) {
						t.Fatalf("%v: single-shard stats %+v != engine stats %+v", r, gst.Stats, wst)
					}
					// Per-shard counters against the per-shard reference
					// stores: the heart of the seek-accounting contract.
					plan, err := ranges.Decompose(c, r, 0)
					if err != nil {
						t.Fatal(err)
					}
					parts := splitPlan(s.part, plan)
					if len(parts) != gst.ShardsTouched || len(parts) != len(gst.PerShard) {
						t.Fatalf("%v: %d parts, stats report %d/%d",
							r, len(parts), gst.ShardsTouched, len(gst.PerShard))
					}
					var sumSeeks int
					for pi, p := range parts {
						ps := gst.PerShard[pi]
						if ps.Shard != p.shard {
							t.Fatalf("%v: PerShard[%d] is shard %d, want %d", r, pi, ps.Shard, p.shard)
						}
						refN, refSt := cursorStats(t, refs[p.shard], p.krs)
						if ps.Results != refN || ps.Seeks != refSt.Seeks ||
							ps.PagesRead != refSt.PagesRead ||
							ps.RecordsScanned != refSt.RecordsScanned {
							t.Fatalf("%v shard %d: stats %+v, reference %d records %+v",
								r, p.shard, ps.Stats, refN, refSt)
						}
						sumSeeks += refSt.Seeks
					}
					if gst.Seeks != sumSeeks {
						t.Fatalf("%v: aggregate seeks %d != per-shard sum %d", r, gst.Seeks, sumSeeks)
					}
				}
			})
		}
	}
}

// copyTree snapshots a sharded engine directory (one level of shard
// subdirectories) file by file.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if ent.IsDir() {
			copyTree(t, filepath.Join(src, ent.Name()), filepath.Join(dst, ent.Name()))
			continue
		}
		in, err := os.Open(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// applySerial applies a deterministic serial put/delete program and
// returns the expected survivor set.
func applySerial(t *testing.T, w putDeleter, c curve.Curve, seed int64, steps int, survivors map[uint64]uint64) {
	t.Helper()
	u := c.Universe()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		key := uint64(rng.Int63n(int64(u.Size())))
		pt := c.Coords(key, make(geom.Point, u.Dims()))
		if rng.Intn(5) == 0 {
			if err := w.Delete(pt); err != nil {
				t.Fatal(err)
			}
			delete(survivors, key)
		} else {
			payload := rng.Uint64()
			if err := w.Put(pt, payload); err != nil {
				t.Fatal(err)
			}
			survivors[key] = payload
		}
	}
}

// verifyShards checks, shard by shard, that each shard engine holds
// exactly the survivors whose keys it owns — both that a recovered shard
// lost nothing acknowledged and that the other shards are untouched.
func verifyShards(t *testing.T, s *Sharded, c curve.Curve, survivors map[uint64]uint64) {
	t.Helper()
	for i, e := range s.engines {
		got, _, err := e.Query(c.Universe().Rect())
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		want := make(map[uint64]uint64)
		for key, payload := range survivors {
			if s.part.Of(key) == i {
				want[key] = payload
			}
		}
		if len(got) != len(want) {
			t.Fatalf("shard %d: %d records, want %d", i, len(got), len(want))
		}
		for _, rec := range got {
			key := c.Index(rec.Point)
			if p, ok := want[key]; !ok || p != rec.Payload {
				t.Fatalf("shard %d: unexpected record %v/%d", i, rec.Point, rec.Payload)
			}
		}
	}
}

// TestShardedCrashRecoveryMatrix kills one shard at three points of its
// write path — after WAL appends, mid-flush (orphaned segment temp file),
// and mid-compaction-install (output and inputs both on disk) — then
// reopens the sharded engine and verifies that no acknowledged write is
// lost anywhere and the undamaged shards are untouched.
func TestShardedCrashRecoveryMatrix(t *testing.T) {
	c, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	const victim = 1
	dir := t.TempDir()
	opts := manualShardOpts(k)
	opts.Engine.SyncWrites = true // every write below is acknowledged durable
	s, err := Open(dir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	survivors := make(map[uint64]uint64)
	applySerial(t, s, c, 100, 400, survivors)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	applySerial(t, s, c, 101, 200, survivors)
	// Live snapshot: every shard holds one segment plus a WAL with the
	// second round — the state an abrupt kill would leave.
	live := t.TempDir()
	copyTree(t, dir, live)
	// Build the compaction snapshots: two segments per shard, then the
	// compacted state.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	pre := t.TempDir()
	copyTree(t, dir, pre)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopenAndVerify := func(t *testing.T, crash string) {
		re, err := Open(crash, c, manualShardOpts(k))
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		verifyShards(t, re, c, survivors)
		// End to end through the router too.
		got, _, err := re.Query(c.Universe().Rect())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(survivors) {
			t.Fatalf("router sees %d records, want %d", len(got), len(survivors))
		}
	}

	t.Run("wal-torn-tail", func(t *testing.T) {
		// Kill after WAL append: the victim's WAL ends in a torn frame
		// from an in-flight unacknowledged write.
		crash := t.TempDir()
		copyTree(t, live, crash)
		wals, err := filepath.Glob(filepath.Join(shardDir(crash, victim), "wal-*.log"))
		if err != nil || len(wals) != 1 {
			t.Fatalf("wals %v err %v", wals, err)
		}
		data, err := os.ReadFile(wals[0])
		if err != nil {
			t.Fatal(err)
		}
		torn := append(data, data[:9]...)
		torn = append(torn, 0xde, 0xad, 0xbe, 0xef)
		if err := os.WriteFile(wals[0], torn, 0o644); err != nil {
			t.Fatal(err)
		}
		reopenAndVerify(t, crash)
	})

	t.Run("flush-crash", func(t *testing.T) {
		// Kill during flush: the segment was half-written to its temp
		// name, the WAL not yet retired. Recovery must ignore the temp
		// file and replay the WAL.
		crash := t.TempDir()
		copyTree(t, live, crash)
		orphan := filepath.Join(shardDir(crash, victim), "seg-000000000099-000000000099-000.pst.tmp")
		if err := os.WriteFile(orphan, []byte("partial segment write"), 0o644); err != nil {
			t.Fatal(err)
		}
		reopenAndVerify(t, crash)
		if _, err := os.Stat(orphan); err == nil {
			// Not required to be deleted, but must never be adopted; the
			// stat is informational either way.
			t.Log("orphaned temp segment still present (ignored)")
		}
	})

	t.Run("compaction-install-crash", func(t *testing.T) {
		// Kill between installing the compacted segment and deleting its
		// inputs: both generations coexist in the victim shard.
		crash := t.TempDir()
		copyTree(t, dir, crash)
		preSegs, err := filepath.Glob(filepath.Join(shardDir(pre, victim), "seg-*.pst"))
		if err != nil || len(preSegs) < 2 {
			t.Fatalf("pre-compaction segments %v err %v", preSegs, err)
		}
		for _, p := range preSegs {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			dst := filepath.Join(shardDir(crash, victim), filepath.Base(p))
			if _, err := os.Stat(dst); err == nil {
				continue // the compacted output keeps a colliding name only on epoch bumps
			}
			if err := os.WriteFile(dst, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		reopenAndVerify(t, crash)
	})
}

func TestShardedReopenAndManifest(t *testing.T) {
	c, err := core.NewOnion2D(16)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, err := Open(dir, c, manualShardOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	survivors := make(map[uint64]uint64)
	applySerial(t, s, c, 7, 120, survivors)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening with a different shard count must refuse: the records
	// already live in the partition they were written under.
	if _, err := Open(dir, c, manualShardOpts(3)); !errors.Is(err, ErrManifest) {
		t.Fatalf("shard count change: %v", err)
	}
	// A different curve must refuse too.
	h, err := baseline.NewHilbert(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, h, manualShardOpts(2)); !errors.Is(err, ErrManifest) {
		t.Fatalf("curve change: %v", err)
	}
	// The matching configuration reopens with all data.
	s2, err := Open(dir, c, manualShardOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyShards(t, s2, c, survivors)

	// A curve variant sharing name, dims and side but not the bijection —
	// an Onion3D segment permutation — must be caught by the manifest's
	// mapping fingerprint, not silently misroute every stored key.
	o3, err := core.NewOnion3D(8)
	if err != nil {
		t.Fatal(err)
	}
	dir3 := t.TempDir()
	s3, err := Open(dir3, o3, manualShardOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
	perm, err := core.NewOnion3DWithSegmentOrder(8, [10]int{10, 9, 8, 7, 6, 5, 4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir3, perm, manualShardOpts(2)); !errors.Is(err, ErrManifest) {
		t.Fatalf("segment-permutation change: %v", err)
	}
}

func TestShardedBudgetAndErrors(t *testing.T) {
	c, err := core.NewOnion2D(16)
	if err != nil {
		t.Fatal(err)
	}
	opts := manualShardOpts(2)
	opts.MaxPlannedRanges = 1
	s, err := Open(t.TempDir(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(geom.Point{3, 3}, 1); err != nil {
		t.Fatal(err)
	}
	// A single cell plans one range: under budget.
	one := geom.Rect{Lo: geom.Point{3, 3}, Hi: geom.Point{3, 3}}
	if _, _, err := s.Query(one); err != nil {
		t.Fatal(err)
	}
	// Find a rectangle that plans more than one range and watch the
	// admission budget reject it before any shard work.
	rng := rand.New(rand.NewSource(1))
	var over geom.Rect
	for {
		r := randomRect(rng, c.Universe())
		plan, err := ranges.Decompose(c, r, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan) > 1 {
			over = r
			break
		}
	}
	if _, _, err := s.Query(over); !errors.Is(err, ErrBudget) {
		t.Fatalf("over-budget query: %v", err)
	}
	// Writes outside the universe are engine.ErrPoint, like the engine.
	if err := s.Put(geom.Point{99, 0}, 1); !errors.Is(err, engine.ErrPoint) {
		t.Fatalf("out-of-universe put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(geom.Point{1, 1}, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, _, err := s.Query(one); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close: %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close: %v", err)
	}
}

// TestShardedAdmission saturates a one-slot router with concurrent mixed
// traffic; under -race this is the router's concurrency test.
func TestShardedAdmission(t *testing.T) {
	c, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Shards:      4,
		Engine:      engine.Options{PageBytes: 512, FlushEntries: 300, CompactFanout: 2, Shards: 2},
		Workers:     2,
		MaxInFlight: 1,
	}
	s, err := Open(t.TempDir(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(300 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := s.Query(randomRect(rng, c.Universe())); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	survivors := make(map[uint64]pagedstore.Record)
	mergeFinals(survivors, ownerPrograms(t, s, c, 41, 4, 1200))
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Query(c.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(survivors) {
		t.Fatalf("%d records after churn, want %d", len(got), len(survivors))
	}
	es := s.Stats()
	if es.Flushes == 0 {
		t.Error("automatic per-shard flush never ran")
	}
	if len(es.PerShard) != 4 {
		t.Fatalf("stats for %d shards, want 4", len(es.PerShard))
	}
}

func TestSplitPlan(t *testing.T) {
	c, err := core.NewOnion2D(16) // 256 keys
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Uniform(c, 4) // bounds 0,64,128,192,256
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		plan []curve.KeyRange
		want []shardPlan
	}{
		{nil, nil},
		{
			[]curve.KeyRange{{Lo: 3, Hi: 9}},
			[]shardPlan{{0, []curve.KeyRange{{Lo: 3, Hi: 9}}}},
		},
		{
			// One range spanning every shard.
			[]curve.KeyRange{{Lo: 0, Hi: 255}},
			[]shardPlan{
				{0, []curve.KeyRange{{Lo: 0, Hi: 63}}},
				{1, []curve.KeyRange{{Lo: 64, Hi: 127}}},
				{2, []curve.KeyRange{{Lo: 128, Hi: 191}}},
				{3, []curve.KeyRange{{Lo: 192, Hi: 255}}},
			},
		},
		{
			// Two ranges landing in the same shard merge into one sub-plan.
			[]curve.KeyRange{{Lo: 10, Hi: 20}, {Lo: 30, Hi: 70}, {Lo: 80, Hi: 90}},
			[]shardPlan{
				{0, []curve.KeyRange{{Lo: 10, Hi: 20}, {Lo: 30, Hi: 63}}},
				{1, []curve.KeyRange{{Lo: 64, Hi: 70}, {Lo: 80, Hi: 90}}},
			},
		},
		{
			// Boundary-exact ranges.
			[]curve.KeyRange{{Lo: 63, Hi: 64}, {Lo: 191, Hi: 192}},
			[]shardPlan{
				{0, []curve.KeyRange{{Lo: 63, Hi: 63}}},
				{1, []curve.KeyRange{{Lo: 64, Hi: 64}}},
				{2, []curve.KeyRange{{Lo: 191, Hi: 191}}},
				{3, []curve.KeyRange{{Lo: 192, Hi: 192}}},
			},
		},
	}
	for i, tc := range cases {
		got := splitPlan(part, tc.plan)
		if len(got) != len(tc.want) {
			t.Fatalf("case %d: %v, want %v", i, got, tc.want)
		}
		for j := range tc.want {
			if got[j].shard != tc.want[j].shard {
				t.Fatalf("case %d part %d: shard %d, want %d", i, j, got[j].shard, tc.want[j].shard)
			}
			if len(got[j].krs) != len(tc.want[j].krs) {
				t.Fatalf("case %d part %d: %v, want %v", i, j, got[j].krs, tc.want[j].krs)
			}
			for m := range tc.want[j].krs {
				if got[j].krs[m] != tc.want[j].krs[m] {
					t.Fatalf("case %d part %d: %v, want %v", i, j, got[j].krs, tc.want[j].krs)
				}
			}
		}
	}
	// Skewed quantile partitions leave empty shards; splitPlan must route
	// around them (every key still belongs to a non-empty shard).
	skew := make([]uint64, 0, 64)
	for i := 0; i < 64; i++ {
		skew = append(skew, uint64(i)) // all sample keys in [0,64)
	}
	bw, err := partition.ByWeight(c, skew, 5)
	if err != nil {
		t.Fatal(err)
	}
	parts := splitPlan(bw, []curve.KeyRange{{Lo: 0, Hi: 255}})
	var total uint64
	for _, p := range parts {
		iv, ok := bw.Interval(p.shard)
		if !ok {
			t.Fatalf("empty shard %d received work", p.shard)
		}
		for _, kr := range p.krs {
			if kr.Lo < iv.Lo || kr.Hi > iv.Hi {
				t.Fatalf("shard %d: %v outside interval %v", p.shard, kr, iv)
			}
			total += kr.Cells()
		}
	}
	if total != 256 {
		t.Fatalf("skewed split covers %d keys, want 256", total)
	}
}

func TestManifestBody(t *testing.T) {
	c, err := core.NewOnion2D(16)
	if err != nil {
		t.Fatal(err)
	}
	body := manifestBody(c, 4)
	for _, want := range []string{"onion-sharded v1", "shards 4", "dims 2", "side 16"} {
		if !strings.Contains(body, want) {
			t.Fatalf("manifest %q missing %q", body, want)
		}
	}
}

// TestSharedCacheAcrossShards: one CacheBytes budget must back every
// shard engine — queries through the router hit the shared cache, and
// Close leaves no resident pages behind.
func TestSharedCacheAcrossShards(t *testing.T) {
	c, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	opts := manualShardOpts(4)
	opts.CacheBytes = 1 << 20
	s, err := Open(t.TempDir(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	survivors := make(map[uint64]pagedstore.Record)
	mergeFinals(survivors, ownerPrograms(t, s, c, 77, 4, 600))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	var firstIO, secondIO pagedstore.IOStats
	rects := make([]geom.Rect, 10)
	for i := range rects {
		rects[i] = randomRect(rng, c.Universe())
	}
	for pass := 0; pass < 2; pass++ {
		for _, r := range rects {
			_, st, err := s.Query(r)
			if err != nil {
				t.Fatal(err)
			}
			if pass == 0 {
				firstIO.Add(st.IO)
			} else {
				secondIO.Add(st.IO)
			}
		}
	}
	if secondIO.PagesFetched >= firstIO.PagesFetched+firstIO.CacheHits && secondIO.CacheHits == 0 {
		t.Fatalf("warm pass shows no caching: cold %+v, warm %+v", firstIO, secondIO)
	}
	cst := s.CacheStats()
	if cst.Hits == 0 || cst.Budget != 1<<20 {
		t.Fatalf("shared cache stats %+v", cst)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if cst := s.CacheStats(); cst.Pages != 0 || cst.Bytes != 0 {
		t.Fatalf("pages survive close: %+v", cst)
	}
}
