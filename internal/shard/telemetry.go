package shard

import (
	"sort"

	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/telemetry"
)

// routerTelemetry holds pre-resolved handles into the router's own metric
// registry — the service-level counters that exist above any one shard
// engine: fan-out shape, admission control, degraded serving. Per-shard
// storage metrics live in each engine's registry and are rolled up by
// TelemetrySnapshot.
type routerTelemetry struct {
	queries         *telemetry.Counter
	queryLatencyUS  *telemetry.Histogram
	fanoutShards    *telemetry.Histogram
	subRanges       *telemetry.Histogram
	admissionWaitUS *telemetry.Histogram
	budgetRejects   *telemetry.Counter
	partialQueries  *telemetry.Counter
	shardFailures   *telemetry.Counter
}

func newRouterTelemetry(reg *telemetry.Registry) *routerTelemetry {
	return &routerTelemetry{
		queries:         reg.Counter("router_queries_total"),
		queryLatencyUS:  reg.Histogram("router_query_latency_us"),
		fanoutShards:    reg.Histogram("router_fanout_shards"),
		subRanges:       reg.Histogram("router_subranges"),
		admissionWaitUS: reg.Histogram("router_admission_wait_us"),
		budgetRejects:   reg.Counter("router_budget_rejects_total"),
		partialQueries:  reg.Counter("router_partial_queries_total"),
		shardFailures:   reg.Counter("router_shard_failures_total"),
	}
}

// Telemetry returns the router's own metric registry: fan-out, admission
// and degradation counters, plus the shared page cache series when the
// router created the cache. Per-shard engine metrics are NOT here — use
// TelemetrySnapshot for the full labeled roll-up.
func (s *Sharded) Telemetry() *telemetry.Registry { return s.reg }

// TelemetrySnapshot snapshots the whole service: every shard engine's
// registry rolled into per-metric aggregates (counters and histograms
// sum; gauges sum; float gauges average) plus per-shard labeled copies
// (shard="0", ...), the router's own metrics, and the per-shard
// maintenance event streams merged into one time-ordered stream with
// Event.Shard rewritten to the owning shard's index.
func (s *Sharded) TelemetrySnapshot() telemetry.Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snaps := make([]telemetry.Snapshot, len(s.engines))
	for i, e := range s.engines {
		snaps[i] = e.Telemetry().Snapshot()
	}
	out := telemetry.Rollup("shard", snaps)
	own := s.reg.Snapshot()
	out.Metrics = append(out.Metrics, own.Metrics...)
	sort.Slice(out.Metrics, func(a, b int) bool { return out.Metrics[a].Name < out.Metrics[b].Name })

	var evs []telemetry.Event
	for i, e := range s.engines {
		for _, ev := range e.Events().Recent(nil) {
			ev.Shard = i
			evs = append(evs, ev)
		}
	}
	telemetry.SortEventsByTime(evs)
	out.Events = evs
	return out
}

// Events returns shard i's maintenance event stream (Event.Shard is -1
// on the per-engine stream; TelemetrySnapshot rewrites it when merging).
func (s *Sharded) Events(i int) *telemetry.Events { return s.engines[i].Events() }

// EngineTelemetry returns shard i's engine registry, for callers that
// want one shard's view rather than the roll-up.
func (s *Sharded) EngineTelemetry(i int) *telemetry.Registry { return s.engines[i].Telemetry() }

// registerRouterTelemetry wires the router registry's sampled series:
// admission occupancy and, when the router owns the shared page cache,
// the cache counters — exported here exactly once rather than once per
// shard engine (the engines detect the shared cache and skip it).
func (s *Sharded) registerRouterTelemetry(ownedCache bool) {
	s.reg.GaugeFunc("router_inflight_queries", func() int64 { return int64(len(s.admit)) })
	s.reg.GaugeFunc("router_shards", func() int64 { return int64(len(s.engines)) })
	if ownedCache {
		engine.RegisterCacheTelemetry(s.reg, s.cache)
	}
}
