package shard

import (
	"fmt"
	"sort"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/repl"
	"github.com/onioncurve/onion/internal/telemetry"
)

// Replicated is a sharded engine whose every shard is a replication
// leader: shard i's engine tees its WAL through a commit hook into a
// repl.Group, so a synchronous write acknowledged by any shard means
// "fsynced on a quorum of that shard's replica set". Replication
// degrades shard by shard exactly like the rest of the service: a shard
// that loses quorum latches ReadOnly (visible in Health) while the other
// shards keep accepting writes.
type Replicated struct {
	*Sharded
	groups []*repl.Group
}

// OpenReplicated opens a sharded engine with per-shard replication.
// cfg(i) supplies shard i's replication config (peer ids, transport,
// quorum, retry shape); SyncWrites is forced on for every shard engine,
// since a quorum ack is only meaningful on top of a durable local
// append. Reopening a directory that already led an epoch requires a
// higher cfg(i).Epoch, the same fencing rule repl.LeadEngine enforces;
// the reopened shards' followers are re-seeded by snapshot at open,
// since the reopened replication index namespace restarts at zero and a
// follower's old-epoch log cannot attest to anything in it.
func OpenReplicated(dir string, c curve.Curve, opts Options, cfg func(shard int) repl.Config) (*Replicated, error) {
	opts = opts.withDefaults()
	dims := c.Universe().Dims()
	hooks := make([]*repl.Hook, opts.Shards)
	for i := range hooks {
		hooks[i] = repl.NewHook(dims)
	}
	opts.CommitHook = func(i int) engine.CommitHook { return hooks[i] }
	opts.Engine.SyncWrites = true
	s, err := Open(dir, c, opts)
	if err != nil {
		return nil, err
	}
	r := &Replicated{Sharded: s}
	for i := range hooks {
		g, err := repl.LeadEngine(s.engines[i], shardDir(dir, i), hooks[i], cfg(i))
		if err != nil {
			for _, open := range r.groups {
				open.Close() //nolint:errcheck
			}
			s.Close() //nolint:errcheck
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.groups = append(r.groups, g)
	}
	return r, nil
}

// Group returns shard i's replication group (failover, recovery and
// telemetry live there).
func (r *Replicated) Group(i int) *repl.Group { return r.groups[i] }

// Heartbeat synchronously drives one catch-up round on every shard's
// replica set — a convergence barrier for tests and orderly shutdown.
func (r *Replicated) Heartbeat() {
	for _, g := range r.groups {
		g.Heartbeat()
	}
}

// Lag reports follower lag in entries across every shard, keyed
// "shard/peer".
func (r *Replicated) Lag() map[string]uint64 {
	out := make(map[string]uint64)
	for i, g := range r.groups {
		for peer, lag := range g.Lag() {
			out[fmt.Sprintf("%d/%s", i, peer)] = lag
		}
	}
	return out
}

// TryRecover attempts quorum recovery on every degraded shard and
// returns the first error (every shard is attempted regardless).
func (r *Replicated) TryRecover() error {
	var firstErr error
	for i, g := range r.groups {
		if _, err := g.TryRecover(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return firstErr
}

// TelemetrySnapshot extends the sharded roll-up with the per-shard
// replication registries: repl_* series aggregate across shards plus
// shard-labeled copies, following the same convention as the engine
// series. The repl counters live on the groups' own registries — never
// on the engines' — so the merge cannot double-count them no matter how
// many roll-up layers stack above.
func (r *Replicated) TelemetrySnapshot() telemetry.Snapshot {
	out := r.Sharded.TelemetrySnapshot()
	snaps := make([]telemetry.Snapshot, len(r.groups))
	for i, g := range r.groups {
		snaps[i] = g.Telemetry().Snapshot()
	}
	rs := telemetry.Rollup("shard", snaps)
	out.Metrics = append(out.Metrics, rs.Metrics...)
	sort.Slice(out.Metrics, func(a, b int) bool { return out.Metrics[a].Name < out.Metrics[b].Name })
	return out
}

// Close stops every shard's replication group, then closes the sharded
// engine. The groups do not own the engines (LeadEngine), so engine
// shutdown stays with Sharded.Close.
func (r *Replicated) Close() error {
	var firstErr error
	for _, g := range r.groups {
		if err := g.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := r.Sharded.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
