package shard

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
)

// benchOpen opens a k-shard engine over a 512x512 onion universe with a
// preloaded record set.
func benchOpen(b *testing.B, k int) *Sharded {
	b.Helper()
	c, err := core.NewOnion2D(512)
	if err != nil {
		b.Fatal(err)
	}
	s, err := Open(b.TempDir(), c, Options{
		Shards: k,
		Engine: engine.Options{FlushEntries: 1 << 14},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40_000; i++ {
		pt := geom.Point{uint32(rng.Intn(512)), uint32(rng.Intn(512))}
		if err := s.Put(pt, rng.Uint64()); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkShardedMixed measures mixed read/write throughput against the
// shard count: each op is one 32x32 rectangle query or (4x as often) one
// point write, issued from GOMAXPROCS client goroutines. Writes contend
// on per-shard WALs and queries fan out per shard, so throughput scales
// with shards on multi-core hosts — this series is BENCH_4.json's
// throughput-vs-shard-count curve.
func BenchmarkShardedMixed(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			s := benchOpen(b, k)
			defer s.Close()
			var clients atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(clients.Add(1)))
				for pb.Next() {
					if rng.Intn(5) == 0 {
						q := geom.Rect{
							Lo: geom.Point{uint32(rng.Intn(480)), uint32(rng.Intn(480))},
						}
						q.Hi = geom.Point{q.Lo[0] + 31, q.Lo[1] + 31}
						if _, _, err := s.Query(q); err != nil {
							b.Fatal(err)
						}
					} else {
						pt := geom.Point{uint32(rng.Intn(512)), uint32(rng.Intn(512))}
						if err := s.Put(pt, rng.Uint64()); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}

// BenchmarkShardedQuery is the read-only series: concurrent 64x64
// rectangle queries against a flushed engine.
func BenchmarkShardedQuery(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			s := benchOpen(b, k)
			defer s.Close()
			var clients atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(clients.Add(1)))
				for pb.Next() {
					q := geom.Rect{
						Lo: geom.Point{uint32(rng.Intn(448)), uint32(rng.Intn(448))},
					}
					q.Hi = geom.Point{q.Lo[0] + 63, q.Lo[1] + 63}
					if _, _, err := s.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkShardedPut is the write-only series: concurrent point writes,
// the path where per-shard WAL and memtable sharding pay off.
func BenchmarkShardedPut(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			c, err := core.NewOnion2D(512)
			if err != nil {
				b.Fatal(err)
			}
			s, err := Open(b.TempDir(), c, Options{
				Shards: k,
				Engine: engine.Options{FlushEntries: 1 << 16},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			var clients atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(clients.Add(1)))
				for pb.Next() {
					pt := geom.Point{uint32(rng.Intn(512)), uint32(rng.Intn(512))}
					if err := s.Put(pt, rng.Uint64()); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
