// Sharded recovery: epoch-stamped composite snapshots, point-in-time
// restore and quarantine repair, composed shard by shard from the
// engine's primitives. A sharded snapshot is one directory holding a
// per-shard engine snapshot under shard-<i>/ plus a top-level manifest
// whose atomic appearance commits the whole composite — an interrupted
// export leaves per-shard debris but no manifest, which Restore refuses.
package shard

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/vfs"
)

// ErrSnapshot reports a malformed, missing or mismatched sharded
// snapshot manifest.
var ErrSnapshot = errors.New("shard: invalid snapshot")

const snapshotManifestName = "SNAPSHOT"

// SnapshotReport summarizes one composite snapshot export.
type SnapshotReport struct {
	Dir      string
	Epoch    uint64 // 1 for a full snapshot, parent epoch + 1 for incremental
	PerShard []engine.SnapshotReport
	Segments int
	Copied   int
	Linked   int
	Reused   int
	Records  int
}

// snapshotManifestBody stamps the composite: the epoch orders snapshots
// of one store, and the embedded configuration identity (the same body
// the directory MANIFEST records) pins which store the snapshot is of.
func snapshotManifestBody(c curve.Curve, shards int, epoch uint64) string {
	return fmt.Sprintf("onion-sharded-snapshot v1\nepoch %d\n%s", epoch, manifestBody(c, shards))
}

// readSnapshotEpoch validates dir as a snapshot of this configuration
// and returns its epoch.
func readSnapshotEpoch(fsys vfs.FS, dir string, c curve.Curve, shards int) (uint64, error) {
	data, err := vfs.ReadFile(fsys, filepath.Join(dir, snapshotManifestName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, fmt.Errorf("%w: no manifest in %s (interrupted export?)", ErrSnapshot, dir)
		}
		return 0, fmt.Errorf("shard: snapshot: %w", err)
	}
	var epoch uint64
	lines := strings.SplitN(string(data), "\n", 3)
	if len(lines) != 3 || lines[0] != "onion-sharded-snapshot v1" {
		return 0, fmt.Errorf("%w: manifest header", ErrSnapshot)
	}
	if _, err := fmt.Sscanf(lines[1], "epoch %d", &epoch); err != nil {
		return 0, fmt.Errorf("%w: manifest epoch", ErrSnapshot)
	}
	if lines[2] != manifestBody(c, shards) {
		return 0, fmt.Errorf("%w: %s is of a different store or partition", ErrSnapshot, dir)
	}
	return epoch, nil
}

// Snapshot exports a full, consistent composite snapshot into dir: every
// shard engine snapshots into dir/shard-<i> (concurrently — each shard's
// snapshot is consistent with its own acknowledged writes), and one
// epoch-stamped top-level manifest commits the composite atomically as
// the last step.
func (s *Sharded) Snapshot(dir string) (SnapshotReport, error) {
	return s.SnapshotSince(dir, "")
}

// SnapshotSince is Snapshot with incremental export against a prior
// composite snapshot: each shard exports only its set-difference against
// the matching shard of the parent (see engine.SnapshotSince). The new
// epoch is the parent's plus one.
func (s *Sharded) SnapshotSince(dir, parent string) (SnapshotReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rep := SnapshotReport{Dir: dir, Epoch: 1}
	if s.closed {
		return rep, ErrClosed
	}
	fsys := vfs.Or(s.opts.FS)
	if parent != "" {
		pe, err := readSnapshotEpoch(fsys, parent, s.c, len(s.engines))
		if err != nil {
			return rep, err
		}
		rep.Epoch = pe + 1
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return rep, fmt.Errorf("shard: snapshot: %w", err)
	}
	rep.PerShard = make([]engine.SnapshotReport, len(s.engines))
	errs := make([]error, len(s.engines))
	var wg sync.WaitGroup
	for i, e := range s.engines {
		wg.Add(1)
		go func(i int, e *engine.Engine) {
			defer wg.Done()
			pshard := ""
			if parent != "" {
				pshard = shardDir(parent, i)
			}
			rep.PerShard[i], errs[i] = e.SnapshotSince(shardDir(dir, i), pshard)
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return rep, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	for _, pr := range rep.PerShard {
		rep.Segments += pr.Segments
		rep.Copied += pr.Copied
		rep.Linked += pr.Linked
		rep.Reused += pr.Reused
		rep.Records += pr.Records
	}
	if err := writeFileAtomic(fsys, dir, snapshotManifestName,
		snapshotManifestBody(s.c, len(s.engines), rep.Epoch)); err != nil {
		return rep, err
	}
	return rep, nil
}

// writeFileAtomic commits name under dir with the store's install
// discipline: tmp + fsync + rename + directory fsync.
func writeFileAtomic(fsys vfs.FS, dir, name, body string) error {
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("shard: snapshot: %w", err)
	}
	if _, err := f.Write([]byte(body)); err != nil {
		f.Close()
		return fmt.Errorf("shard: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shard: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: snapshot: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("shard: snapshot: %w", err)
	}
	return nil
}

// Restore materializes a fresh sharded directory at targetDir from the
// composite snapshot at snapshotDir: each shard restores independently
// (snapshot segments + archived-WAL replay, see engine.Restore), with
// upTo bounding the records replayed PER SHARD (upTo < 0 replays
// everything). The build happens in a staging sibling renamed into place
// last, so targetDir is atomically absent-or-complete; targetDir must
// not exist. Open the result with the same curve and shard count.
func Restore(snapshotDir, targetDir string, upTo int, c curve.Curve, opts Options) ([]engine.RestoreReport, error) {
	opts = opts.withDefaults()
	fsys := vfs.Or(opts.FS)
	if _, err := readSnapshotEpoch(fsys, snapshotDir, c, opts.Shards); err != nil {
		return nil, err
	}
	if _, err := fsys.ReadDir(targetDir); err == nil {
		return nil, fmt.Errorf("shard: restore: target %s already exists", targetDir)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("shard: restore: %w", err)
	}
	tmp := targetDir + ".restore-tmp"
	if err := fsys.MkdirAll(tmp, 0o755); err != nil {
		return nil, fmt.Errorf("shard: restore: %w", err)
	}
	engOpts := opts.Engine
	if engOpts.FS == nil {
		engOpts.FS = opts.FS
	}
	reps := make([]engine.RestoreReport, opts.Shards)
	errs := make([]error, opts.Shards)
	var wg sync.WaitGroup
	for i := 0; i < opts.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Clear per-shard debris of an earlier interrupted restore:
			// engine.Restore demands an absent target.
			sdir := shardDir(tmp, i)
			if ents, err := fsys.ReadDir(sdir); err == nil {
				for _, ent := range ents {
					if err := fsys.Remove(filepath.Join(sdir, ent.Name())); err != nil {
						errs[i] = fmt.Errorf("shard: restore: %w", err)
						return
					}
				}
				if err := fsys.Remove(sdir); err != nil {
					errs[i] = fmt.Errorf("shard: restore: %w", err)
					return
				}
			}
			reps[i], errs[i] = engine.Restore(shardDir(snapshotDir, i), sdir, upTo, c, engOpts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return reps, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	// Stamp the directory MANIFEST so the restored service reopens with
	// the identity it was snapshotted with, then commit the whole tree.
	if err := writeFileAtomic(fsys, tmp, manifestName, manifestBody(c, opts.Shards)); err != nil {
		return reps, err
	}
	if err := fsys.Rename(tmp, targetDir); err != nil {
		return reps, fmt.Errorf("shard: restore: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(targetDir)); err != nil {
		return reps, fmt.Errorf("shard: restore: %w", err)
	}
	return reps, nil
}

// Repair fans engine.Repair out to every shard against the matching
// shard of the composite snapshot (empty snapshotDir limits every shard
// to pure salvage), then reports per-shard results in shard order. The
// first hard error is returned; irreparable files are reported in the
// per-shard Unrepaired lists, not as errors.
func (s *Sharded) Repair(snapshotDir string) ([]engine.RepairReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	reps := make([]engine.RepairReport, len(s.engines))
	errs := make([]error, len(s.engines))
	var wg sync.WaitGroup
	for i, e := range s.engines {
		wg.Add(1)
		go func(i int, e *engine.Engine) {
			defer wg.Done()
			sdir := ""
			if snapshotDir != "" {
				sdir = shardDir(snapshotDir, i)
			}
			reps[i], errs[i] = e.Repair(sdir)
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return reps, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return reps, nil
}

// TryRecover attempts guarded health de-escalation on every shard (see
// engine.TryRecover) and returns the resulting states in shard order.
// Recovery failures ride in each ShardHealth's Err; the service-level
// call never fails outright.
func (s *Sharded) TryRecover() []ShardHealth {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ShardHealth, len(s.engines))
	var wg sync.WaitGroup
	for i, e := range s.engines {
		wg.Add(1)
		go func(i int, e *engine.Engine) {
			defer wg.Done()
			st, err := e.TryRecover()
			out[i] = ShardHealth{Shard: i, State: st, Err: err}
		}(i, e)
	}
	wg.Wait()
	return out
}
