package shard

import (
	"math/rand"
	"slices"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/partition"
	"github.com/onioncurve/onion/internal/ranges"
)

// fuzzCurves spans the curve families the router serves, at universe
// sizes small enough for the brute-force oracle to enumerate fully.
func fuzzCurves(f *testing.F) []curve.Curve {
	f.Helper()
	var cs []curve.Curve
	add := func(c curve.Curve, err error) {
		if err != nil {
			f.Fatal(err)
		}
		cs = append(cs, c)
	}
	add(core.NewOnion2D(16))
	add(core.NewOnion2D(31)) // odd side
	add(core.NewOnion3D(8))
	add(baseline.NewHilbert(2, 32))
	add(baseline.NewSnake(3, 6))
	return cs
}

// FuzzShardRouter fuzzes the rectangle → shard fan-out against a
// brute-force single-shard oracle: enumerate every cell of the
// rectangle, assign its key to a shard with Partitioner.Of, and demand
// that expanding the router's per-shard sub-plans reproduces exactly
// those per-shard key sets — for uniform partitions and for skewed
// quantile partitions with empty shards.
func FuzzShardRouter(f *testing.F) {
	cs := fuzzCurves(f)
	for w := range cs {
		side := cs[w].Universe().Side()
		f.Add(uint8(w), uint32(0), side-1, uint32(0), side-1, uint32(0), side-1, uint8(3), int64(0))
		f.Add(uint8(w), uint32(0), uint32(0), uint32(0), uint32(0), uint32(0), uint32(0), uint8(1), int64(1))
		f.Add(uint8(w), uint32(1), side-2, uint32(1), side-2, uint32(1), side-2, uint8(8), int64(2))
	}
	f.Fuzz(func(t *testing.T, which uint8, x0, x1, y0, y1, z0, z1 uint32, kRaw uint8, skew int64) {
		c := cs[int(which)%len(cs)]
		u := c.Universe()
		k := int(kRaw)%12 + 1
		var part *partition.Partitioner
		var err error
		if skew == 0 {
			part, err = partition.Uniform(c, k)
		} else {
			// Quantile partition over a skewed key sample: coinciding
			// boundaries leave empty shards the splitter must route around.
			rng := rand.New(rand.NewSource(skew))
			keys := make([]uint64, 64)
			span := uint64(rng.Int63n(int64(u.Size()))) + 1
			for i := range keys {
				keys[i] = uint64(rng.Int63n(int64(span)))
			}
			part, err = partition.ByWeight(c, keys, k)
		}
		if err != nil {
			t.Fatal(err)
		}
		lo := make(geom.Point, u.Dims())
		hi := make(geom.Point, u.Dims())
		raw := [6]uint32{x0, x1, y0, y1, z0, z1}
		for i := 0; i < u.Dims(); i++ {
			j := i
			if j >= 3 {
				j = 2
			}
			a := raw[2*j] % u.Side()
			b := raw[2*j+1] % u.Side()
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		r := geom.Rect{Lo: lo, Hi: hi}

		plan, err := ranges.Decompose(c, r, 0)
		if err != nil {
			t.Fatal(err)
		}
		parts := splitPlan(part, plan)

		// Oracle: per-shard sorted key sets by brute-force cell walk.
		oracle := make(map[int][]uint64)
		r.ForEach(func(p geom.Point) bool {
			key := c.Index(p)
			s := part.Of(key)
			oracle[s] = append(oracle[s], key)
			return true
		})
		for _, keys := range oracle {
			slices.Sort(keys)
		}

		// Structural invariants + exact per-shard coverage.
		got := make(map[int][]uint64)
		prevShard := -1
		for _, p := range parts {
			if p.shard <= prevShard {
				t.Fatalf("parts not in ascending shard order: %d after %d", p.shard, prevShard)
			}
			prevShard = p.shard
			iv, ok := part.Interval(p.shard)
			if !ok {
				t.Fatalf("empty shard %d received work", p.shard)
			}
			var prev *curve.KeyRange
			for i := range p.krs {
				kr := p.krs[i]
				if kr.Lo > kr.Hi {
					t.Fatalf("shard %d: inverted range %v", p.shard, kr)
				}
				if kr.Lo < iv.Lo || kr.Hi > iv.Hi {
					t.Fatalf("shard %d: %v outside interval %v", p.shard, kr, iv)
				}
				if prev != nil && kr.Lo <= prev.Hi {
					t.Fatalf("shard %d: %v overlaps %v", p.shard, kr, *prev)
				}
				prev = &p.krs[i]
				for key := kr.Lo; key <= kr.Hi; key++ {
					got[p.shard] = append(got[p.shard], key)
				}
			}
		}
		if len(got) != len(oracle) {
			t.Fatalf("fan-out to %d shards, oracle says %d", len(got), len(oracle))
		}
		for s, want := range oracle {
			g := got[s]
			if len(g) != len(want) {
				t.Fatalf("shard %d: %d keys, oracle %d", s, len(g), len(want))
			}
			for i := range want {
				if g[i] != want[i] {
					t.Fatalf("shard %d: key[%d] = %d, oracle %d", s, i, g[i], want[i])
				}
			}
		}
	})
}
