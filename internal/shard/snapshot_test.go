package shard

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/vfs"
)

func snapCurve(t *testing.T) curve.Curve {
	t.Helper()
	o, err := core.NewOnion2D(64)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// snapState queries the full universe and returns key → payload.
func snapState(t *testing.T, s *Sharded, c curve.Curve) map[uint64]uint64 {
	t.Helper()
	recs, _, err := s.Query(c.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[uint64]uint64, len(recs))
	for _, r := range recs {
		m[c.Index(r.Point)] = r.Payload
	}
	return m
}

func mapsEqual(a, b map[uint64]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// TestShardedSnapshotRestore: composite export, incremental export, and
// per-shard point-in-time restore all round-trip through the top-level
// epoch-stamped manifest.
func TestShardedSnapshotRestore(t *testing.T) {
	c := snapCurve(t)
	root := t.TempDir()
	dir := filepath.Join(root, "db")
	s1, s2 := filepath.Join(root, "snap1"), filepath.Join(root, "snap2")
	opts := manualShardOpts(2)
	opts.Engine.SyncWrites = true

	s, err := Open(dir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	put := func(x, y uint32) {
		t.Helper()
		if err := s.Put(geom.Point{x, y}, uint64(x)*100+uint64(y)); err != nil {
			t.Fatal(err)
		}
	}
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			put(x, y)
		}
	}
	r1, err := s.Snapshot(s1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Epoch != 1 || len(r1.PerShard) != 2 || r1.Segments == 0 {
		t.Fatalf("full composite report %+v", r1)
	}
	for x := uint32(16); x < 24; x++ {
		for y := uint32(0); y < 16; y++ {
			put(x, y)
		}
	}
	r2, err := s.SnapshotSince(s2, s1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epoch != 2 || r2.Reused == 0 {
		t.Fatalf("incremental composite report %+v, want epoch 2 reusing parent segments", r2)
	}
	// Writes after the last snapshot reach a restore only via the shards'
	// archived WALs.
	for x := uint32(24); x < 28; x++ {
		for y := uint32(0); y < 16; y++ {
			put(x, y)
		}
	}
	want := snapState(t, s, c)
	wantAtS2 := make(map[uint64]uint64)
	for k, v := range want {
		if x := v / 100; x < 24 {
			wantAtS2[k] = v
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restore-to-latest replays every archived WAL per shard.
	target := filepath.Join(root, "restored-all")
	reps, err := Restore(s2, target, -1, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("restore returned %d shard reports, want 2", len(reps))
	}
	rs, err := Open(target, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := snapState(t, rs, c); !mapsEqual(got, want) {
		t.Fatalf("restored state: %d records, want %d", len(got), len(want))
	}
	rs.Close()

	// upTo == 0 restores the snapshot boundary alone.
	target0 := filepath.Join(root, "restored-snap")
	if _, err := Restore(s2, target0, 0, c, opts); err != nil {
		t.Fatal(err)
	}
	rs0, err := Open(target0, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := snapState(t, rs0, c); !mapsEqual(got, wantAtS2) {
		t.Fatalf("snapshot-boundary restore: %d records, want %d", len(got), len(wantAtS2))
	}
	rs0.Close()

	// A mismatched configuration is refused.
	bad := manualShardOpts(3)
	if _, err := Restore(s2, filepath.Join(root, "x"), -1, c, bad); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("restore with wrong shard count = %v, want ErrSnapshot", err)
	}
	// An uncommitted composite (manifest missing) is refused.
	if err := os.Remove(filepath.Join(s2, snapshotManifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(s2, filepath.Join(root, "y"), -1, c, opts); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("restore of uncommitted composite = %v, want ErrSnapshot", err)
	}
}

// TestShardedRepair: one shard's segment rots; the composite Verify
// quarantines it, Repair heals it from the matching shard of the
// composite snapshot, and TryRecover reports every shard Healthy.
func TestShardedRepair(t *testing.T) {
	c := snapCurve(t)
	root := t.TempDir()
	dir := filepath.Join(root, "db")
	snap := filepath.Join(root, "snap")
	opts := manualShardOpts(2)
	opts.Engine.SyncWrites = true
	// No hardlink capability: the snapshot byte-copies, so corrupting the
	// source cannot reach the backup.
	opts.FS = vfs.NewInjecting(vfs.OS{})

	s, err := Open(dir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck
	for x := uint32(0); x < 32; x++ {
		for y := uint32(0); y < 8; y++ {
			if err := s.Put(geom.Point{x, y}, uint64(x)*100+uint64(y)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := snapState(t, s, c)
	if _, err := s.Snapshot(snap); err != nil {
		t.Fatal(err)
	}

	// Corrupt the first segment file of the first shard that has one.
	segs, err := filepath.Glob(filepath.Join(dir, "shard-*", "*.pst"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no shard segments found: %v", err)
	}
	sort.Strings(segs)
	victim := segs[0]
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(victim, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	off := fi.Size() / 2
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	vreps, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	quarantined := 0
	for _, vr := range vreps {
		quarantined += len(vr.Quarantined)
	}
	if quarantined != 1 {
		t.Fatalf("verify quarantined %d segments, want 1", quarantined)
	}
	degraded := 0
	for _, h := range s.Health() {
		if h.State == engine.Degraded {
			degraded++
		}
	}
	if degraded != 1 {
		t.Fatalf("%d shards degraded, want exactly 1", degraded)
	}

	rreps, err := s.Repair(snap)
	if err != nil {
		t.Fatal(err)
	}
	repaired := 0
	for _, rr := range rreps {
		repaired += rr.Repaired
		if len(rr.Unrepaired) != 0 {
			t.Fatalf("repair left files quarantined: %+v", rr)
		}
	}
	if repaired != 1 {
		t.Fatalf("repair fixed %d segments, want 1", repaired)
	}
	for _, h := range s.TryRecover() {
		if h.State != engine.Healthy || h.Err != nil {
			t.Fatalf("shard %d after repair: %v (err %v), want Healthy", h.Shard, h.State, h.Err)
		}
	}
	if got := snapState(t, s, c); !mapsEqual(got, want) {
		t.Fatalf("state after repair: %d records, want %d", len(got), len(want))
	}
}
