package shard

import (
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/ingest"
)

// Curve returns the curve the service clusters and routes by — the one
// passed to Open. Ingest pipelines use it to key ops before routing.
func (s *Sharded) Curve() curve.Curve { return s.c }

// ShardOf returns the index of the shard owning curve key — the same
// routing Put and Query use.
func (s *Sharded) ShardOf(key uint64) int { return s.part.Of(key) }

// ingestTarget adapts the sharded service to the ingest batch sink: one
// stripe per shard, routed by the service's own partitioner, each batch
// applied through the owning engine's PutBatch (one group-commit fsync
// per coalesced batch per shard).
type ingestTarget struct{ s *Sharded }

func (t ingestTarget) Stripes() int            { return len(t.s.engines) }
func (t ingestTarget) StripeOf(key uint64) int { return t.s.part.Of(key) }

func (t ingestTarget) ApplyBatch(i int, ops []engine.BatchOp) error {
	t.s.mu.RLock()
	defer t.s.mu.RUnlock()
	if t.s.closed {
		return ErrClosed
	}
	return t.s.engines[i].PutBatch(ops)
}

// NewIngest builds and starts an async ingest pipeline over the service:
// ops enqueue into one shared MPMC ring, a striped batcher coalesces them
// per shard, and each shard's batches ride that engine's WAL group
// committer. Close the pipeline before closing the service.
func (s *Sharded) NewIngest(cfg ingest.Config) (*ingest.Pipeline, error) {
	return ingest.New(s.c, ingestTarget{s}, cfg)
}
