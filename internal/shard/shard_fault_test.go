package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/vfs"
)

// sfOpen opens a 4-shard service over side-32 Onion2D on fsys, with
// per-shard backgrounds disabled.
func sfOpen(t *testing.T, dir string, fsys vfs.FS, sync bool) *Sharded {
	t.Helper()
	o, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, o, Options{
		Shards:  4,
		Engine:  engine.Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1, Shards: 2, SyncWrites: sync},
		Workers: 4,
		FS:      fsys,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestManifestFaultMatrix enumerates every filesystem operation the
// MANIFEST tmp+rename write performs, fails (then crashes) each in
// turn, and asserts the invariant: the failed open errors out, and the
// next clean open never sees a half-written manifest — it either reads
// the complete one or atomically recreates it.
func TestManifestFaultMatrix(t *testing.T) {
	o, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	want := manifestBody(o, 4)

	// Enumeration pass: count every operation touching the manifest.
	inj := vfs.NewInjecting(vfs.OS{})
	inj.SetFaults(vfs.Fault{Path: manifestName})
	s := sfOpen(t, t.TempDir(), inj, false)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	total := inj.Matched(0)
	if total < 5 {
		t.Fatalf("manifest write performs %d operations, expected at least create+write+sync+rename+syncdir", total)
	}

	for _, kind := range []vfs.Kind{vfs.KindFail, vfs.KindCrash} {
		for n := int64(1); n <= total; n++ {
			t.Run(fmt.Sprintf("%s-n%d", kind, n), func(t *testing.T) {
				dir := t.TempDir()
				ifs := vfs.NewInjecting(vfs.OS{})
				ifs.SetFaults(vfs.Fault{Path: manifestName, N: n, Kind: kind})
				if _, err := Open(dir, o, Options{Shards: 4, FS: ifs}); err == nil {
					t.Fatalf("open with manifest fault %d/%d succeeded", n, total)
				}
				// Clean reopen: the manifest is whole, the service works.
				s := sfOpen(t, dir, vfs.OS{}, false)
				defer s.Close()
				got, err := vfs.ReadFile(vfs.OS{}, dir+"/"+manifestName)
				if err != nil {
					t.Fatalf("manifest unreadable after recovery: %v", err)
				}
				if string(got) != want {
					t.Fatalf("manifest after recovery = %q, want %q", got, want)
				}
				if err := s.Put(o.Universe().Rect().Lo, 1); err != nil {
					t.Fatal(err)
				}
				if _, _, err := s.Query(o.Universe().Rect()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// sfFill loads one record per cell of a 32x32 grid and flushes, so
// every query must read segment pages (and therefore hits injected
// read faults).
func sfFill(t *testing.T, s *Sharded) int {
	t.Helper()
	n := 0
	for x := uint32(0); x < 32; x += 2 {
		for y := uint32(0); y < 32; y += 2 {
			if err := s.Put([]uint32{x, y}, uint64(x)<<16|uint64(y)); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPartialQuerySkipsFailingShard(t *testing.T) {
	o, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	inj := vfs.NewInjecting(vfs.OS{})
	s := sfOpen(t, t.TempDir(), inj, false)
	defer s.Close()
	n := sfFill(t, s)
	full := o.Universe().Rect()

	recs, st, err := s.QueryAppendContext(context.Background(), nil, full, QueryPolicy{})
	if err != nil || len(recs) != n || st.Degraded {
		t.Fatalf("clean query: %d records (want %d), degraded=%v, err %v", len(recs), n, st.Degraded, err)
	}
	shard0 := 0
	for _, ps := range st.PerShard {
		if ps.Shard == 0 {
			shard0 = ps.Results
		}
	}
	if shard0 == 0 {
		t.Fatal("shard 0 serves no records; the fixture cannot exercise partial results")
	}

	// Every read in shard 0 fails from here on.
	inj.SetFaults(vfs.Fault{Op: vfs.OpRead, Path: "shard-000", N: 1, Repeat: true})

	// Strict policy: the shard failure fails the query.
	if _, _, err := s.QueryAppendContext(context.Background(), nil, full, QueryPolicy{}); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("strict query over failing shard = %v, want the injected fault", err)
	}

	// Partial policy: the failing shard is skipped and reported.
	recs, st, err = s.QueryAppendContext(context.Background(), nil, full, QueryPolicy{Partial: true})
	if err != nil {
		t.Fatalf("partial query: %v", err)
	}
	if !st.Degraded || len(st.FailedShards) != 1 || st.FailedShards[0] != 0 {
		t.Fatalf("partial stats: degraded=%v failed=%v, want shard 0 reported", st.Degraded, st.FailedShards)
	}
	if len(recs) != n-shard0 {
		t.Fatalf("partial query returned %d records, want %d (all but shard 0's %d)", len(recs), n, shard0)
	}
	for _, ps := range st.PerShard {
		if ps.Shard == 0 {
			t.Fatalf("failed shard present in PerShard breakdown: %+v", st.PerShard)
		}
	}

	// All shards failing: partial cannot pretend an empty answer.
	inj.SetFaults(vfs.Fault{Op: vfs.OpRead, N: 1, Repeat: true})
	if _, _, err := s.QueryAppendContext(context.Background(), nil, full, QueryPolicy{Partial: true}); err == nil {
		t.Fatal("partial query with every shard failing returned success")
	}
}

func TestReadOnlyShardKeepsOthersServing(t *testing.T) {
	o, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	inj := vfs.NewInjecting(vfs.OS{})
	s := sfOpen(t, t.TempDir(), inj, true)
	defer s.Close()
	n := sfFill(t, s)

	// Shard 0's WAL can no longer fsync: its next synchronous write
	// fails and latches the shard ReadOnly. The other shards are
	// untouched.
	inj.SetFaults(vfs.Fault{Op: vfs.OpSync, Path: "shard-000", N: 1, Repeat: true})
	var roErr error
	wrote := 0
	for x := uint32(1); x < 32 && roErr == nil; x += 2 {
		for y := uint32(1); y < 32; y += 2 {
			if err := s.Put([]uint32{x, y}, 7); err != nil {
				roErr = err
				break
			}
			wrote++
		}
	}
	if !errors.Is(roErr, engine.ErrReadOnly) {
		t.Fatalf("no write hit the ReadOnly shard (wrote %d, err %v)", wrote, roErr)
	}

	healths := s.Health()
	ro := 0
	for _, h := range healths {
		switch {
		case h.Shard == 0 && h.State == engine.ReadOnly:
			ro++
		case h.Shard != 0 && h.State != engine.Healthy:
			t.Fatalf("shard %d degraded to %v: %v", h.Shard, h.State, h.Err)
		}
	}
	if ro != 1 {
		t.Fatalf("per-shard health %+v, want exactly shard 0 ReadOnly", healths)
	}

	// Writes routed to healthy shards keep acking...
	healthyWrites := 0
	for x := uint32(1); x < 32; x += 2 {
		for y := uint32(1); y < 32; y += 2 {
			err := s.Put([]uint32{x, y}, 9)
			if err == nil {
				healthyWrites++
			} else if !errors.Is(err, engine.ErrReadOnly) {
				t.Fatalf("write error %v, want nil or ErrReadOnly", err)
			}
		}
	}
	if healthyWrites == 0 {
		t.Fatal("every shard rejected writes; only shard 0 should be ReadOnly")
	}
	// ...and strict queries still serve every previously flushed record.
	recs, _, err := s.Query(o.Universe().Rect())
	if err != nil {
		t.Fatalf("query with a ReadOnly shard: %v", err)
	}
	if len(recs) < n {
		t.Fatalf("query returned %d records, want at least the %d flushed", len(recs), n)
	}
}

func TestShardQueryContextCanceled(t *testing.T) {
	o, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	s := sfOpen(t, t.TempDir(), vfs.OS{}, false)
	defer s.Close()
	sfFill(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Cancellation is never masked — not even by the partial policy.
	for _, pol := range []QueryPolicy{{}, {Partial: true}} {
		if _, _, err := s.QueryAppendContext(ctx, nil, o.Universe().Rect(), pol); !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled query (partial=%v) = %v, want context.Canceled", pol.Partial, err)
		}
	}
}
