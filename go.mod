module github.com/onioncurve/onion

go 1.24
