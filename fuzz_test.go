package onion_test

// Native fuzz targets. `go test` runs the seed corpus as regular tests;
// `go test -fuzz=FuzzX` explores further. Each target asserts a total
// correctness property, not example-specific values.

import (
	"testing"

	onion "github.com/onioncurve/onion"
)

func FuzzOnion2DRoundTrip(f *testing.F) {
	o, err := onion.NewOnion2D(1 << 10)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(1023), uint32(1023))
	f.Add(uint32(511), uint32(512))
	f.Add(uint32(37), uint32(999))
	f.Fuzz(func(t *testing.T, x, y uint32) {
		p := onion.Point{x % 1024, y % 1024}
		h := o.Index(p)
		if h >= 1<<20 {
			t.Fatalf("Index(%v) = %d out of range", p, h)
		}
		if back := o.Coords(h, nil); !back.Equal(p) {
			t.Fatalf("round trip %v -> %d -> %v", p, h, back)
		}
	})
}

func FuzzOnion3DRoundTrip(f *testing.F) {
	o, err := onion.NewOnion3D(1 << 6)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint32(0), uint32(0), uint32(0))
	f.Add(uint32(63), uint32(63), uint32(63))
	f.Add(uint32(31), uint32(32), uint32(33))
	f.Fuzz(func(t *testing.T, x, y, z uint32) {
		p := onion.Point{x % 64, y % 64, z % 64}
		h := o.Index(p)
		if back := o.Coords(h, nil); !back.Equal(p) {
			t.Fatalf("round trip %v -> %d -> %v", p, h, back)
		}
	})
}

func FuzzDecomposeExact(f *testing.F) {
	o, _ := onion.NewOnion2D(64)
	z, _ := onion.NewZCurve(2, 64)
	h, _ := onion.NewHilbert(2, 64)
	f.Add(uint32(0), uint32(0), uint32(5), uint32(5), uint8(0))
	f.Add(uint32(10), uint32(20), uint32(30), uint32(40), uint8(1))
	f.Add(uint32(63), uint32(63), uint32(63), uint32(63), uint8(2))
	f.Fuzz(func(t *testing.T, x0, y0, x1, y1 uint32, which uint8) {
		lo := onion.Point{x0 % 64, y0 % 64}
		hi := onion.Point{x1 % 64, y1 % 64}
		for i := range lo {
			if lo[i] > hi[i] {
				lo[i], hi[i] = hi[i], lo[i]
			}
		}
		r, err := onion.NewRect(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var c onion.Curve
		switch which % 3 {
		case 0:
			c = o
		case 1:
			c = z
		default:
			c = h
		}
		rs, err := onion.Decompose(c, r)
		if err != nil {
			t.Fatal(err)
		}
		var cells uint64
		var prevHi uint64
		for i, kr := range rs {
			if kr.Lo > kr.Hi {
				t.Fatalf("inverted range %v", kr)
			}
			if i > 0 && kr.Lo <= prevHi+1 {
				t.Fatalf("ranges not minimal/sorted at %d", i)
			}
			prevHi = kr.Hi
			cells += kr.Cells()
		}
		if cells != r.Cells() {
			t.Fatalf("%s %v: ranges cover %d cells, want %d", c.Name(), r, cells, r.Cells())
		}
		n, err := onion.ClusterCount(c, r)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(len(rs)) != n {
			t.Fatalf("%s %v: %d ranges vs clustering number %d", c.Name(), r, len(rs), n)
		}
	})
}

// FuzzWalkerSeeded checks that a Walker seeded at an arbitrary key agrees
// with the scalar Coords mapping for a window of steps, across every curve
// family, and exhausts exactly at the end of the curve.
func FuzzWalkerSeeded(f *testing.F) {
	o2, _ := onion.NewOnion2D(96)
	o3, _ := onion.NewOnion3D(16)
	nd, _ := onion.NewOnionND(3, 9)
	lex, _ := onion.NewLayerLex(2, 31)
	hil, _ := onion.NewHilbert(2, 64)
	z, _ := onion.NewZCurve(2, 64)
	g, _ := onion.NewGrayCode(2, 64)
	snake, _ := onion.NewSnake(3, 11)
	peano, _ := onion.NewPeano(2, 27)
	curves := []onion.Curve{o2, o3, nd, lex, hil, z, g, snake, peano}
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(95*95), uint8(1))
	f.Add(uint64(1<<12-1), uint8(4))
	f.Add(uint64(37), uint8(8))
	f.Fuzz(func(t *testing.T, start uint64, which uint8) {
		c := curves[int(which)%len(curves)]
		n := c.Universe().Size()
		start %= n
		w := onion.NewWalker(c, start)
		want := make(onion.Point, c.Universe().Dims())
		for k := 0; k < 64; k++ {
			h := start + uint64(k)
			gh, p, ok := w.Next()
			if h >= n {
				if ok {
					t.Fatalf("%s: walker returned key %d beyond size %d", c.Name(), gh, n)
				}
				return
			}
			if !ok || gh != h {
				t.Fatalf("%s: walker from %d gave (%d,%v) at step %d", c.Name(), start, gh, ok, k)
			}
			c.Coords(h, want)
			if !p.Equal(want) {
				t.Fatalf("%s: walker cell at %d = %v, want %v", c.Name(), h, p, want)
			}
		}
	})
}

func FuzzAverageClusteringBounds(f *testing.F) {
	o, _ := onion.NewOnion2D(32)
	u, _ := onion.NewUniverse(2, 32)
	f.Add(uint32(4), uint32(4))
	f.Add(uint32(31), uint32(2))
	f.Add(uint32(16), uint32(16))
	f.Fuzz(func(t *testing.T, w, h uint32) {
		shape := []uint32{w%32 + 1, h%32 + 1}
		avg, err := onion.AverageClustering(o, shape)
		if err != nil {
			t.Fatal(err)
		}
		if avg < 1 {
			t.Fatalf("shape %v: average %.4f below 1", shape, avg)
		}
		lb, err := onion.LowerBoundGeneral(u, shape)
		if err != nil {
			t.Fatal(err)
		}
		if avg < lb-1e-9 {
			t.Fatalf("shape %v: average %.4f below general lower bound %.4f", shape, avg, lb)
		}
		// No query can have more clusters than cells.
		if maxCells := float64(shape[0]) * float64(shape[1]); avg > maxCells {
			t.Fatalf("shape %v: average %.4f exceeds cell count", shape, avg)
		}
	})
}
