// Range planner example: trade seeks for extra scanned cells by merging a
// query's cluster ranges under a seek budget — the superset-query model of
// Asano et al. discussed in the paper's related work.
package main

import (
	"fmt"
	"log"

	onion "github.com/onioncurve/onion"
)

func main() {
	const side = 1 << 8

	z, err := onion.NewZCurve(2, side)
	if err != nil {
		log.Fatal(err)
	}
	o, err := onion.NewOnion2D(side)
	if err != nil {
		log.Fatal(err)
	}

	// A mid-grid query fragments badly on the Z curve.
	q, err := onion.RectAt(onion.Point{100, 100}, []uint32{60, 60})
	if err != nil {
		log.Fatal(err)
	}
	model := onion.DefaultDiskModel()

	for _, c := range []onion.Curve{z, o} {
		rs, err := onion.Decompose(c, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: exact decomposition = %d ranges covering %d cells\n",
			c.Name(), len(rs), q.Cells())
		for _, budget := range []int{1, 4, 16, 64} {
			if budget >= len(rs) {
				continue
			}
			m, err := onion.MergeToBudget(rs, budget)
			if err != nil {
				log.Fatal(err)
			}
			// Price both plans: seeks dominate, so fewer ranges can win
			// even though extra cells are read.
			exactCost := float64(len(rs))*model.SeekMillis +
				float64(q.Cells())/256*model.PageMillis
			mergedCost := float64(len(m.Ranges))*model.SeekMillis +
				float64(q.Cells()+m.ExtraCells)/256*model.PageMillis
			fmt.Printf("  budget %3d: %3d ranges, +%7d extra cells, cost %8.2fms (exact %8.2fms)\n",
				budget, len(m.Ranges), m.ExtraCells, mergedCost, exactCost)
		}
		fmt.Println()
	}
	fmt.Println("the onion curve needs no budget tricks: its decomposition is already small")
}
