// Range planner example: trade seeks for extra scanned cells by merging a
// query's cluster ranges under a seek budget — the superset-query model of
// Asano et al. discussed in the paper's related work — and decompose
// paper-scale queries (10^8+ cells) through the analytic output-sensitive
// planners, which no enumeration-based strategy could touch.
package main

import (
	"fmt"
	"log"
	"time"

	onion "github.com/onioncurve/onion"
)

func main() {
	const side = 1 << 8

	z, err := onion.NewZCurve(2, side)
	if err != nil {
		log.Fatal(err)
	}
	o, err := onion.NewOnion2D(side)
	if err != nil {
		log.Fatal(err)
	}

	// A mid-grid query fragments badly on the Z curve.
	q, err := onion.RectAt(onion.Point{100, 100}, []uint32{60, 60})
	if err != nil {
		log.Fatal(err)
	}
	model := onion.DefaultDiskModel()

	for _, c := range []onion.Curve{z, o} {
		rs, err := onion.Decompose(c, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: exact decomposition = %d ranges covering %d cells\n",
			c.Name(), len(rs), q.Cells())
		for _, budget := range []int{1, 4, 16, 64} {
			if budget >= len(rs) {
				continue
			}
			m, err := onion.MergeToBudget(rs, budget)
			if err != nil {
				log.Fatal(err)
			}
			// Price both plans: seeks dominate, so fewer ranges can win
			// even though extra cells are read.
			exactCost := float64(len(rs))*model.SeekMillis +
				float64(q.Cells())/256*model.PageMillis
			mergedCost := float64(len(m.Ranges))*model.SeekMillis +
				float64(q.Cells()+m.ExtraCells)/256*model.PageMillis
			fmt.Printf("  budget %3d: %3d ranges, +%7d extra cells, cost %8.2fms (exact %8.2fms)\n",
				budget, len(m.Ranges), m.ExtraCells, mergedCost, exactCost)
		}
		fmt.Println()
	}
	fmt.Println("the onion curve needs no budget tricks: its decomposition is already small")
	fmt.Println()
	paperScale()
}

// paperScale decomposes Figure 5b sized queries. The 3D onion universe
// below holds 2^30 cells and the query covers ~10^9 of them; the analytic
// planner answers in microseconds because its cost scales with the number
// of clusters, not the query surface.
func paperScale() {
	o2, err := onion.NewOnion2D(1 << 15)
	if err != nil {
		log.Fatal(err)
	}
	o3, err := onion.NewOnion3D(1 << 10)
	if err != nil {
		log.Fatal(err)
	}
	queries := []struct {
		name string
		c    onion.Curve
		r    onion.Rect
	}{
		{"onion2d 32752^2 inset", o2, mustRect(onion.Point{8, 8}, onion.Point{1<<15 - 9, 1<<15 - 9})},
		{"onion2d 16384^2 offset", o2, mustRect(onion.Point{8192, 9192}, onion.Point{24575, 25575})},
		{"onion3d 1008^3 inset", o3, mustRect(onion.Point{8, 8, 8}, onion.Point{1015, 1015, 1015})},
	}
	fmt.Println("paper-scale decomposition through the analytic planners:")
	for _, q := range queries {
		start := time.Now()
		rs, err := onion.Decompose(q.c, q.r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %14d cells -> %6d ranges in %s\n",
			q.name, q.r.Cells(), len(rs), time.Since(start).Round(time.Microsecond))
	}
}

func mustRect(lo, hi onion.Point) onion.Rect {
	r, err := onion.NewRect(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
