// Sharded serving example: the curve's key space is split across four
// independent engine shards; writers stream updates into their owning
// shards while readers run rectangle queries that are planned once,
// split at shard boundaries, and fanned out concurrently to only the
// shards they intersect.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	onion "github.com/onioncurve/onion"
)

func main() {
	const side = 1 << 9
	const shards = 4
	dir, err := os.MkdirTemp("", "onion-sharded")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	o, err := onion.NewOnion2D(side)
	if err != nil {
		log.Fatal(err)
	}
	s, err := onion.OpenShardedEngine(dir, o, onion.ShardedEngineOptions{
		Shards: shards,
		Engine: onion.EngineOptions{FlushEntries: 20_000},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sharded engine at %s: %d shards over a %dx%d onion-clustered universe\n\n",
		dir, shards, side, side)

	// 4 writers ingest 200k updates while 2 readers query the moving set.
	var written, queries, fanout atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50_000; i++ {
				pt := onion.Point{uint32(rng.Intn(side)), uint32(rng.Intn(side))}
				var werr error
				if rng.Intn(10) == 0 {
					werr = s.Delete(pt)
				} else {
					werr = s.Put(pt, rng.Uint64())
				}
				if werr != nil {
					log.Fatal(werr)
				}
				written.Add(1)
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q, err := onion.RectAt(
					onion.Point{uint32(rng.Intn(side - 64)), uint32(rng.Intn(side - 64))},
					[]uint32{64, 64})
				if err != nil {
					log.Fatal(err)
				}
				_, st, err := s.Query(q)
				if err != nil {
					log.Fatal(err)
				}
				queries.Add(1)
				fanout.Add(int64(st.ShardsTouched))
				runtime.Gosched() // model client think time
			}
		}(r)
	}
	for written.Load() < 200_000 {
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	fmt.Printf("ingest done: %d writes routed by curve key, %d queries served mid-ingest "+
		"(avg fan-out %.2f of %d shards)\n\n",
		written.Load(), queries.Load(),
		float64(fanout.Load())/float64(queries.Load()), shards)

	if err := s.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		log.Fatal(err)
	}
	es := s.Stats()
	fmt.Printf("after flush + compaction (%d records total):\n", es.SegmentRecords)
	for i, ps := range es.PerShard {
		fmt.Printf("  shard %d: %d segment(s), %6d records, %d flushes, %d compactions\n",
			i, ps.Segments, ps.SegmentRecords, ps.Flushes, ps.Compactions)
	}

	// One query, dissected: a 128x128 rectangle is planned once; the
	// split sub-plans run only on the shards they intersect, and the
	// aggregate seeks are the sum of the per-shard seeks.
	q, err := onion.RectAt(onion.Point{100, 100}, []uint32{128, 128})
	if err != nil {
		log.Fatal(err)
	}
	recs, st, err := s.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery %v: %d records, planned %d cluster ranges -> %d sub-ranges on %d shard(s)\n",
		q, len(recs), st.Planned, st.SubRanges, st.ShardsTouched)
	for _, ps := range st.PerShard {
		fmt.Printf("  shard %d: %3d seeks, %4d pages, %5d records scanned, %5d results\n",
			ps.Shard, ps.Seeks, ps.PagesRead, ps.RecordsScanned, ps.Results)
	}
	fmt.Printf("  total:   %3d seeks, %4d pages, %5d records scanned, %5d results\n",
		st.Seeks, st.PagesRead, st.RecordsScanned, st.Results)

	if err := s.Close(); err != nil {
		log.Fatal(err)
	}
	// Reopen: every shard recovers independently from its own WAL and
	// segments; the manifest pins the partition.
	s2, err := onion.OpenShardedEngine(dir, o, onion.ShardedEngineOptions{Shards: shards})
	if err != nil {
		log.Fatal(err)
	}
	all, _, err := s2.Query(o.Universe().Rect())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreopened: %d records intact across %d shards\n", len(all), shards)
	if err := s2.Close(); err != nil {
		log.Fatal(err)
	}
}
