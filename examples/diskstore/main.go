// Disk store example: bulk-load points into a real file physically
// clustered in curve order, then run range queries and watch the actual
// positioned reads — the concrete version of the paper's "clustering
// number = disk seeks" argument.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	onion "github.com/onioncurve/onion"
)

func main() {
	const side = 1 << 9
	dir, err := os.MkdirTemp("", "onion-diskstore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	o, err := onion.NewOnion2D(side)
	if err != nil {
		log.Fatal(err)
	}
	h, err := onion.NewHilbert(2, side)
	if err != nil {
		log.Fatal(err)
	}

	// 200k synthetic sensor readings.
	rng := rand.New(rand.NewSource(13))
	recs := make([]onion.Record, 200_000)
	for i := range recs {
		recs[i] = onion.Record{
			Point:   onion.Point{uint32(rng.Intn(side)), uint32(rng.Intn(side))},
			Payload: uint64(i),
		}
	}

	// A large near-cube query (the regime the onion curve owns) and a
	// small one.
	big, err := onion.RectAt(onion.Point{10, 20}, []uint32{480, 480})
	if err != nil {
		log.Fatal(err)
	}
	small, err := onion.RectAt(onion.Point{200, 130}, []uint32{40, 40})
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range []onion.Curve{o, h} {
		path := filepath.Join(dir, c.Name()+".tbl")
		if err := onion.WriteStore(path, c, recs, 4096); err != nil {
			log.Fatal(err)
		}
		st, err := onion.OpenStore(path, c)
		if err != nil {
			log.Fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s table: %d records, %.1f MiB on disk\n",
			c.Name(), st.Len(), float64(info.Size())/(1<<20))
		for _, q := range []struct {
			name string
			r    onion.Rect
		}{{"480x480", big}, {"40x40", small}} {
			got, stats, err := st.Query(q.r)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s query: %6d rows, %4d seeks, %5d pages, %7d records scanned\n",
				q.name, len(got), stats.Seeks, stats.PagesRead, stats.RecordsScanned)
		}
		st.Close()
		fmt.Println()
	}
	fmt.Println("same data, same file format — only the clustering curve differs")
}
