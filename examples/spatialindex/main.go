// Spatial index example: index synthetic GPS-like point data with three
// different curves and compare the simulated disk cost of range queries —
// the scenario that motivates the paper (Section I).
//
// Two query regimes are shown. For large, near-cube queries the onion
// curve's near-optimal clustering dominates (Table I). For small queries
// the cluster *count* is comparable, and a second effect appears that the
// paper's conclusion explicitly leaves open ("the distance between
// different clusters of the same query region... tends to be important in
// fetching data from the disk"): the onion curve's clusters live on
// distant layers of the key space, so naive sequential layout pays more
// long seeks than Hilbert. The simulation reproduces both sides honestly.
package main

import (
	"fmt"
	"log"
	"math/rand"

	onion "github.com/onioncurve/onion"
)

const side = 1 << 9 // 512 x 512 grid of "geohash" cells

func main() {
	o, err := onion.NewOnion2D(side)
	if err != nil {
		log.Fatal(err)
	}
	h, err := onion.NewHilbert(2, side)
	if err != nil {
		log.Fatal(err)
	}
	z, err := onion.NewZCurve(2, side)
	if err != nil {
		log.Fatal(err)
	}
	curves := []onion.Curve{o, h, z}

	// Synthesize clustered points: a few dense "cities" plus noise.
	rng := rand.New(rand.NewSource(7))
	points := make([]onion.Point, 0, 50000)
	cities := [][2]float64{{100, 100}, {400, 380}, {250, 60}, {60, 450}}
	for i := 0; i < 50000; i++ {
		var x, y float64
		if rng.Float64() < 0.15 {
			x, y = rng.Float64()*side, rng.Float64()*side
		} else {
			c := cities[rng.Intn(len(cities))]
			x = c[0] + rng.NormFloat64()*25
			y = c[1] + rng.NormFloat64()*25
		}
		points = append(points, onion.Point{clamp(x), clamp(y)})
	}

	indexes := make(map[string]*onion.Index)
	for _, c := range curves {
		ix, err := onion.NewIndex(c, onion.WithPageSize(128))
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range points {
			if _, err := ix.Insert(p); err != nil {
				log.Fatal(err)
			}
		}
		indexes[c.Name()] = ix
	}

	fmt.Println("regime 1: large near-cube queries (l = 480 of 512) — the paper's Table I regime")
	runQueries(curves, indexes, 480, 480, 50)

	fmt.Println("\nregime 2: small/medium city-block queries (l in [8, 72])")
	runQueries(curves, indexes, 8, 72, 200)

	fmt.Println("\nranges == the paper's clustering number (one 1-D scan each);")
	fmt.Println("seeks also charge inter-cluster distance, the open aspect named in the paper's conclusion")
}

func runQueries(curves []onion.Curve, indexes map[string]*onion.Index, minW, maxW int, n int) {
	model := onion.DefaultDiskModel()
	fmt.Printf("  %-8s %10s %10s %10s %12s\n", "curve", "ranges", "seeks", "pages", "avg cost ms")
	for _, c := range curves {
		ix := indexes[c.Name()]
		qrng := rand.New(rand.NewSource(99))
		var ranges, seeks, pages, cost float64
		for i := 0; i < n; i++ {
			w := minW
			if maxW > minW {
				w = qrng.Intn(maxW-minW) + minW
			}
			lo := onion.Point{
				uint32(qrng.Intn(side - w + 1)),
				uint32(qrng.Intn(side - w + 1)),
			}
			q, err := onion.RectAt(lo, []uint32{uint32(w), uint32(w)})
			if err != nil {
				log.Fatal(err)
			}
			_, st, err := ix.Query(q)
			if err != nil {
				log.Fatal(err)
			}
			ranges += float64(st.Ranges)
			seeks += float64(st.Disk.Seeks)
			pages += float64(st.Disk.PagesRead)
			cost += st.Disk.Cost(model)
		}
		fn := float64(n)
		fmt.Printf("  %-8s %10.1f %10.1f %10.1f %12.2f\n",
			c.Name(), ranges/fn, seeks/fn, pages/fn, cost/fn)
	}
}

func clamp(v float64) uint32 {
	if v < 0 {
		return 0
	}
	if v >= side {
		return side - 1
	}
	return uint32(v)
}
