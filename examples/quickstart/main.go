// Quickstart: map cells to curve keys, compare clustering across curves,
// and decompose a query into scan ranges.
package main

import (
	"fmt"
	"log"

	onion "github.com/onioncurve/onion"
)

func main() {
	const side = 1 << 10 // the paper's 2D universe: 1024 x 1024

	o, err := onion.NewOnion2D(side)
	if err != nil {
		log.Fatal(err)
	}
	h, err := onion.NewHilbert(2, side)
	if err != nil {
		log.Fatal(err)
	}
	z, err := onion.NewZCurve(2, side)
	if err != nil {
		log.Fatal(err)
	}

	// Forward and inverse mapping.
	p := onion.Point{300, 700}
	key := o.Index(p)
	fmt.Printf("onion key of %v = %d; inverse -> %v\n\n", p, key, o.Coords(key, nil))

	// Clustering number of a large square query (Figure 5a territory):
	// how many disk seeks would a clustered table pay?
	q, err := onion.RectAt(onion.Point{25, 40}, []uint32{974, 974})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []onion.Curve{o, h, z} {
		n, err := onion.ClusterCount(c, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s clusters for a 974x974 query: %d\n", c.Name(), n)
	}

	// Decompose a small query into its scan ranges.
	small, err := onion.RectAt(onion.Point{100, 100}, []uint32{8, 8})
	if err != nil {
		log.Fatal(err)
	}
	rs, err := onion.Decompose(o, small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nonion ranges for an 8x8 query (%d):\n", len(rs))
	for _, r := range rs {
		fmt.Printf("  %v (%d cells)\n", r, r.Cells())
	}

	// The paper's headline constants.
	_, eta2 := onion.OnionCubeRatio2D()
	_, eta3 := onion.OnionCubeRatio3D()
	fmt.Printf("\nonion approximation ratio for cubes: %.2f (2D), %.2f (3D)\n", eta2, eta3)
}
