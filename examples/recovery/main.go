// Backup and recovery example: the full self-healing story in one run.
// An engine takes a consistent snapshot mid-ingest, keeps writing (the
// retired WALs land in the archive), and is then restored to three
// different points in time. Afterwards a segment file is corrupted on
// disk: the scrub quarantines it, the engine degrades to serving the
// intact remainder, and Repair rebuilds the lost pages from the
// snapshot — salvaging every CRC-clean page of the condemned file and
// back-filling only the damaged key intervals — until the store is
// Healthy again.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	onion "github.com/onioncurve/onion"
)

const side = 1 << 8

func main() {
	root, err := os.MkdirTemp("", "onion-recovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	dir := filepath.Join(root, "db")
	snap1 := filepath.Join(root, "backup-1")
	snap2 := filepath.Join(root, "backup-2")

	o, err := onion.NewOnion2D(side)
	if err != nil {
		log.Fatal(err)
	}
	opts := onion.EngineOptions{
		PageBytes:    1024,
		FlushEntries: -1,   // flush by hand so the timeline is deterministic
		SyncWrites:   true, // every op durable before it is acknowledged
		WALRetention: 0,    // archive every retired WAL, keep all of them
	}
	eng, err := onion.OpenEngine(dir, o, opts)
	if err != nil {
		log.Fatal(err)
	}

	// --- Phase 1: ingest, snapshot, keep ingesting. --------------------
	put := func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for y := 0; y < 64; y++ {
				if err := eng.Put(onion.Point{uint32(x), uint32(y)}, uint64(x*1000+y)); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	put(0, 32)
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}
	s1, err := eng.Snapshot(snap1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full snapshot:        epoch %d, %d segments (%d hardlinked, %d copied)\n",
		s1.Epoch, s1.Segments, s1.Linked, s1.Copied)

	put(32, 48)
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}
	s2, err := eng.SnapshotSince(snap2, snap1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental snapshot: epoch %d, %d segments, %d reused from parent\n",
		s2.Epoch, s2.Segments, s2.Reused)

	// These writes are flushed after the last snapshot: a restore can
	// only reach them by replaying the archived WALs.
	put(48, 56)
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	// --- Phase 2: point-in-time restore. -------------------------------
	count := func(dir string) int {
		e, err := onion.OpenEngine(dir, o, opts)
		if err != nil {
			log.Fatal(err)
		}
		recs, _, err := e.Query(o.Universe().Rect())
		if err != nil {
			log.Fatal(err)
		}
		if err := e.Close(); err != nil {
			log.Fatal(err)
		}
		return len(recs)
	}
	// upTo counts archived WAL generations beyond the snapshot: 0 is the
	// snapshot boundary alone, -1 replays everything in the archive.
	for _, pit := range []struct {
		upTo int
		what string
	}{{0, "snapshot boundary"}, {-1, "latest archived write"}} {
		target := filepath.Join(root, fmt.Sprintf("restored-%d", pit.upTo))
		rep, err := onion.RestoreEngine(snap2, target, pit.upTo, o, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restore to %-22s %d segments, %d WAL records replayed, %d records live\n",
			pit.what+":", rep.Segments, rep.Replayed, count(target))
	}

	// --- Phase 3: corruption, quarantine, repair. ----------------------
	segs, err := filepath.Glob(filepath.Join(dir, "*.pst"))
	if err != nil || len(segs) == 0 {
		log.Fatal("no segment files found")
	}
	// On the same device a snapshot hardlinks segments, so the backup
	// shares the live file's inode: scribbling on it in place would rot
	// the backup too (put real backups on another filesystem). Corrupt by
	// replacing the directory entry instead — the snapshot keeps the old
	// clean inode, exactly as if only the live copy had decayed.
	buf, err := os.ReadFile(segs[0])
	if err != nil {
		log.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(segs[0]+".rot", buf, 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(segs[0]+".rot", segs[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflipped one bit in %s\n", filepath.Base(segs[0]))

	eng, err = onion.OpenEngine(dir, o, opts)
	if err != nil {
		log.Fatal(err)
	}
	vr, err := eng.Verify()
	if err != nil {
		log.Fatal(err)
	}
	h, herr := eng.Health()
	fmt.Printf("verify: %d segments checked, %d quarantined, health %v (%v)\n",
		vr.SegmentsChecked, len(vr.Quarantined), h, herr)
	for _, q := range vr.Quarantined {
		fmt.Printf("  condemned %s covering keys [%d, %d] — queries in that range are partial\n",
			filepath.Base(q.Path), q.Lo, q.Hi)
	}

	rr, err := eng.Repair(snap2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair: %d/%d repaired — %d records salvaged from clean pages, %d back-filled from the snapshot\n",
		rr.Repaired, rr.Attempted, rr.Salvaged, rr.Backfilled)
	fmt.Printf("health after repair: %v\n", rr.Health)
	if rr.Health != onion.EngineHealthy {
		log.Fatalf("engine did not recover: %+v", rr)
	}

	// The repaired store serves the full data set again, durably.
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened store holds %d records — repaired state is durable\n", count(dir))
}
