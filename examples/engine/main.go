// Storage engine example: ingest while querying. Concurrent writers
// stream point updates (and deletions) into the LSM engine while readers
// answer rectangle queries, each planned once and paid for in seeks —
// then the demo flushes, compacts, crashes and recovers.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	onion "github.com/onioncurve/onion"
)

func main() {
	const side = 1 << 9
	dir, err := os.MkdirTemp("", "onion-engine")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	o, err := onion.NewOnion2D(side)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := onion.OpenEngine(dir, o, onion.EngineOptions{
		PageBytes:    4096,
		FlushEntries: 50_000, // background flush every ~50k writes
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("engine at %s, onion-clustered %dx%d universe\n\n", dir, side, side)

	// 4 writers ingest 300k updates (10% deletes) while 2 readers run
	// rectangle queries against the moving data set.
	var written atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 75_000; i++ {
				pt := onion.Point{uint32(rng.Intn(side)), uint32(rng.Intn(side))}
				if rng.Intn(10) == 0 {
					if err := eng.Delete(pt); err != nil {
						log.Fatal(err)
					}
				} else {
					if err := eng.Put(pt, rng.Uint64()); err != nil {
						log.Fatal(err)
					}
				}
				written.Add(1)
			}
		}(w)
	}
	stop := make(chan struct{})
	var queries, seeks, results atomic.Int64
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q, err := onion.RectAt(
					onion.Point{uint32(rng.Intn(side - 64)), uint32(rng.Intn(side - 64))},
					[]uint32{64, 64})
				if err != nil {
					log.Fatal(err)
				}
				recs, st, err := eng.Query(q)
				if err != nil {
					log.Fatal(err)
				}
				queries.Add(1)
				seeks.Add(int64(st.Seeks))
				results.Add(int64(len(recs)))
			}
		}(r)
	}

	start := time.Now()
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Millisecond):
				es := eng.Stats()
				fmt.Printf("  %5.1fs  writes %7d  queries %5d  memtable %6d  segments %d\n",
					time.Since(start).Seconds(), written.Load(), queries.Load(),
					es.MemEntries, es.Segments)
			}
		}
	}()

	// Wait for the writers, then stop the readers.
	for written.Load() < 300_000 {
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	fmt.Printf("\ningest done: %d writes, %d queries answered mid-ingest "+
		"(avg %.1f seeks, %.0f results per query)\n",
		written.Load(), queries.Load(),
		float64(seeks.Load())/float64(queries.Load()),
		float64(results.Load())/float64(queries.Load()))

	// Flush + full compaction: one curve-ordered segment, tombstones gone.
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := eng.Compact(); err != nil {
		log.Fatal(err)
	}
	es := eng.Stats()
	fmt.Printf("after compaction: %d segment(s), %d records, %d flushes, %d compactions\n",
		es.Segments, es.SegmentRecords, es.Flushes, es.Compactions)

	q, err := onion.RectAt(onion.Point{100, 100}, []uint32{128, 128})
	if err != nil {
		log.Fatal(err)
	}
	recs, st, err := eng.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %v: %d records, %d seeks / %d pages (planned %d cluster ranges)\n",
		q, len(recs), st.Seeks, st.PagesRead, st.Planned)

	// Write a few more records, then crash (no Close) and recover.
	for i := 0; i < 1000; i++ {
		if err := eng.Put(onion.Point{uint32(i % side), uint32(i / side)}, uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Sync(); err != nil { // acknowledge durability, then "crash"
		log.Fatal(err)
	}
	before, _, err := eng.Query(o.Universe().Rect())
	if err != nil {
		log.Fatal(err)
	}
	// Simulate the crash by abandoning the engine (no Close) and
	// reopening the directory: recovery replays the WAL.
	eng2, err := onion.OpenEngine(dir, o, onion.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	after, _, err := eng2.Query(o.Universe().Rect())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash recovery: %d records before, %d after replaying the WAL\n",
		len(before), len(after))
	if len(before) != len(after) {
		log.Fatal("recovery lost acknowledged writes")
	}
	// Closing the recovered engine flushes its memtable; a close failure
	// here would mean the recovered state never reached a segment.
	if err := eng2.Close(); err != nil {
		log.Fatal(err)
	}
}
