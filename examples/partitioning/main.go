// Partitioning example: shard a spatial data set across workers by curve
// key ranges (the paper intro's distributed-partitioning motivation) and
// measure both load balance and query fan-out per curve.
package main

import (
	"fmt"
	"log"
	"math/rand"

	onion "github.com/onioncurve/onion"
)

func main() {
	const (
		side    = 1 << 9
		workers = 16
		nPoints = 40000
		queries = 200
	)

	o, err := onion.NewOnion2D(side)
	if err != nil {
		log.Fatal(err)
	}
	h, err := onion.NewHilbert(2, side)
	if err != nil {
		log.Fatal(err)
	}
	z, err := onion.NewZCurve(2, side)
	if err != nil {
		log.Fatal(err)
	}

	// Skewed data: most points in one hot region.
	rng := rand.New(rand.NewSource(3))
	pts := make([]onion.Point, 0, nPoints)
	for i := 0; i < nPoints; i++ {
		if rng.Float64() < 0.7 {
			pts = append(pts, onion.Point{
				uint32(50 + rng.Intn(side/4)),
				uint32(50 + rng.Intn(side/4)),
			})
		} else {
			pts = append(pts, onion.Point{
				uint32(rng.Intn(side)),
				uint32(rng.Intn(side)),
			})
		}
	}

	fmt.Printf("%-8s %12s %12s %12s\n", "curve", "max load", "ideal", "avg fan-out")
	for _, c := range []onion.Curve{o, h, z} {
		keys := make([]uint64, len(pts))
		for i, p := range pts {
			keys[i] = c.Index(p)
		}
		part, err := onion.WeightedPartition(c, keys, workers)
		if err != nil {
			log.Fatal(err)
		}
		maxLoad := 0
		for _, l := range part.Loads(keys) {
			if l > maxLoad {
				maxLoad = l
			}
		}
		// Fan-out of medium rectangles: how many workers must answer?
		qrng := rand.New(rand.NewSource(11))
		var fanout float64
		for i := 0; i < queries; i++ {
			w := uint32(qrng.Intn(side/4) + 4)
			ht := uint32(qrng.Intn(side/4) + 4)
			q, err := onion.RectAt(onion.Point{
				uint32(qrng.Intn(side - int(w))),
				uint32(qrng.Intn(side - int(ht))),
			}, []uint32{w, ht})
			if err != nil {
				log.Fatal(err)
			}
			fo, err := part.FanOut(q)
			if err != nil {
				log.Fatal(err)
			}
			fanout += float64(fo)
		}
		fmt.Printf("%-8s %12d %12d %12.2f\n",
			c.Name(), maxLoad, len(pts)/workers, fanout/queries)
	}
	fmt.Println("\nlower fan-out = fewer workers per query; max load ~ ideal = balanced shards")
	fmt.Println("note: onion clusters sit on distant layers of the key space, so mid-size")
	fmt.Println("queries touch more shards — the inter-cluster-distance effect the paper's")
	fmt.Println("conclusion lists as future work; its clustering-count advantage appears on")
	fmt.Println("large near-cube queries (see examples/spatialindex)")
}
