package onion_test

import (
	"fmt"
	"strings"
	"testing"

	onion "github.com/onioncurve/onion"
)

func TestPublicCurveConstructors(t *testing.T) {
	type ctor struct {
		name string
		fn   func() (onion.Curve, error)
	}
	for _, c := range []ctor{
		{"onion2d", func() (onion.Curve, error) { return onion.NewOnion2D(16) }},
		{"onion3d", func() (onion.Curve, error) { return onion.NewOnion3D(8) }},
		{"onionnd", func() (onion.Curve, error) { return onion.NewOnionND(4, 8) }},
		{"layerlex", func() (onion.Curve, error) { return onion.NewLayerLex(2, 8) }},
		{"hilbert", func() (onion.Curve, error) { return onion.NewHilbert(2, 16) }},
		{"zcurve", func() (onion.Curve, error) { return onion.NewZCurve(2, 16) }},
		{"graycode", func() (onion.Curve, error) { return onion.NewGrayCode(2, 16) }},
		{"rowmajor", func() (onion.Curve, error) { return onion.NewRowMajor(2, 16) }},
		{"colmajor", func() (onion.Curve, error) { return onion.NewColumnMajor(2, 16) }},
		{"snake", func() (onion.Curve, error) { return onion.NewSnake(2, 16) }},
	} {
		cv, err := c.fn()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		// Round-trip a cell through the public interface.
		p := make(onion.Point, cv.Universe().Dims())
		for i := range p {
			p[i] = 1
		}
		h := cv.Index(p)
		back := cv.Coords(h, nil)
		if !back.Equal(p) {
			t.Fatalf("%s: round trip failed", c.name)
		}
	}
}

func TestPublicClusterCountAndDecompose(t *testing.T) {
	o, err := onion.NewOnion2D(64)
	if err != nil {
		t.Fatal(err)
	}
	r, err := onion.RectAt(onion.Point{10, 10}, []uint32{20, 20})
	if err != nil {
		t.Fatal(err)
	}
	n, err := onion.ClusterCount(o, r)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := onion.Decompose(o, r)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(rs)) != n {
		t.Fatalf("decompose %d ranges vs count %d", len(rs), n)
	}
	merged, err := onion.MergeToBudget(rs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Ranges) > 2 {
		t.Fatal("budget exceeded")
	}
}

func TestPublicAverageAndBounds(t *testing.T) {
	o, _ := onion.NewOnion2D(32)
	h, _ := onion.NewHilbert(2, 32)
	u, err := onion.NewUniverse(2, 32)
	if err != nil {
		t.Fatal(err)
	}
	shape := []uint32{29, 29}
	oAvg, err := onion.AverageClustering(o, shape)
	if err != nil {
		t.Fatal(err)
	}
	hAvg, err := onion.AverageClustering(h, shape)
	if err != nil {
		t.Fatal(err)
	}
	if oAvg >= hAvg {
		t.Fatalf("onion %.2f should beat hilbert %.2f on near-full squares", oAvg, hAvg)
	}
	lbC, err := onion.LowerBoundContinuous(u, shape)
	if err != nil {
		t.Fatal(err)
	}
	lbG, err := onion.LowerBoundGeneral(u, shape)
	if err != nil {
		t.Fatal(err)
	}
	if oAvg < lbC || oAvg < lbG {
		t.Fatal("onion average below lower bound")
	}
}

func TestPublicRatios(t *testing.T) {
	_, eta2 := onion.OnionCubeRatio2D()
	_, eta3 := onion.OnionCubeRatio3D()
	if eta2 < 2.3 || eta2 > 2.33 {
		t.Fatalf("2D ratio %.3f", eta2)
	}
	if eta3 < 3.37 || eta3 > 3.41 {
		t.Fatalf("3D ratio %.3f", eta3)
	}
}

func TestPublicIndex(t *testing.T) {
	o, _ := onion.NewOnion2D(64)
	ix, err := onion.NewIndex(o, onion.WithTreeOrder(16), onion.WithPageSize(32))
	if err != nil {
		t.Fatal(err)
	}
	for x := uint32(0); x < 64; x += 4 {
		for y := uint32(0); y < 64; y += 4 {
			if _, err := ix.Insert(onion.Point{x, y}); err != nil {
				t.Fatal(err)
			}
		}
	}
	r, _ := onion.RectAt(onion.Point{0, 0}, []uint32{32, 32})
	ids, st, err := ix.Query(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 64 { // 8x8 grid points inside
		t.Fatalf("results = %d", len(ids))
	}
	if st.Disk.Cost(onion.DefaultDiskModel()) <= 0 {
		t.Fatal("zero disk cost")
	}
}

func TestPublicPartition(t *testing.T) {
	o, _ := onion.NewOnion2D(32)
	p, err := onion.UniformPartition(o, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := onion.RectAt(onion.Point{4, 4}, []uint32{8, 8})
	fo, err := p.FanOut(r)
	if err != nil {
		t.Fatal(err)
	}
	if fo < 1 || fo > 8 {
		t.Fatalf("fan-out = %d", fo)
	}
	wp, err := onion.WeightedPartition(o, []uint64{1, 2, 3, 500, 501}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wp.Shards() != 2 {
		t.Fatal("weighted shards")
	}
}

func TestPublicViz(t *testing.T) {
	o, _ := onion.NewOnion2D(4)
	grid, err := onion.DrawCurve(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(grid, "15") {
		t.Fatalf("grid:\n%s", grid)
	}
	r, _ := onion.RectAt(onion.Point{1, 1}, []uint32{2, 2})
	pic, n, err := onion.DrawQuery(o, r)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || !strings.Contains(pic, "a") {
		t.Fatalf("pic (n=%d):\n%s", n, pic)
	}
}

func TestIsContinuous(t *testing.T) {
	o2, _ := onion.NewOnion2D(8)
	o3, _ := onion.NewOnion3D(8)
	z, _ := onion.NewZCurve(2, 8)
	if !onion.IsContinuous(o2) {
		t.Error("onion2d continuous")
	}
	if onion.IsContinuous(o3) || onion.IsContinuous(z) {
		t.Error("onion3d/z are not continuous")
	}
}

// Example demonstrates the quickstart flow: build curves, compare their
// clustering on a query, decompose into scan ranges.
func Example() {
	o, _ := onion.NewOnion2D(8)
	h, _ := onion.NewHilbert(2, 8)
	q, _ := onion.RectAt(onion.Point{0, 1}, []uint32{7, 7})
	co, _ := onion.ClusterCount(o, q)
	ch, _ := onion.ClusterCount(h, q)
	fmt.Printf("onion: %d clusters, hilbert: %d clusters\n", co, ch)
	// Output: onion: 1 clusters, hilbert: 5 clusters
}
