package onion_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	onion "github.com/onioncurve/onion"
)

func TestSortPoints(t *testing.T) {
	o, _ := onion.NewOnion2D(64)
	rng := rand.New(rand.NewSource(5))
	pts := make([]onion.Point, 200)
	for i := range pts {
		pts[i] = onion.Point{uint32(rng.Int31n(64)), uint32(rng.Int31n(64))}
	}
	onion.SortPoints(o, pts)
	for i := 1; i < len(pts); i++ {
		if o.Index(pts[i-1]) > o.Index(pts[i]) {
			t.Fatalf("points %d and %d out of curve order", i-1, i)
		}
	}
}

func TestSortPointsEmptyAndSingle(t *testing.T) {
	o, _ := onion.NewOnion2D(8)
	onion.SortPoints(o, nil)
	one := []onion.Point{{3, 3}}
	onion.SortPoints(o, one)
	if !one[0].Equal(onion.Point{3, 3}) {
		t.Fatal("single point changed")
	}
}

func TestSpreadAndStretchFacade(t *testing.T) {
	o, _ := onion.NewOnion2D(64)
	r, _ := onion.RectAt(onion.Point{4, 4}, []uint32{16, 16})
	sp, err := onion.ClusterSpread(o, r)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Clusters < 1 || sp.Span < r.Cells() {
		t.Fatalf("spread = %+v", sp)
	}
	st, err := onion.Stretch(o, 1, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean != 1 {
		t.Fatalf("continuous curve stretch = %v", st.Mean)
	}
}

// TestRoundTripQuick property-tests the public curves on random cells.
func TestRoundTripQuick(t *testing.T) {
	o2, _ := onion.NewOnion2D(1 << 12)
	o3, _ := onion.NewOnion3D(1 << 8)
	h2, _ := onion.NewHilbert(2, 1<<12)
	z3, _ := onion.NewZCurve(3, 1<<8)
	type tc struct {
		c    onion.Curve
		side uint32
		dims int
	}
	for _, c := range []tc{{o2, 1 << 12, 2}, {o3, 1 << 8, 3}, {h2, 1 << 12, 2}, {z3, 1 << 8, 3}} {
		c := c
		f := func(raw [3]uint32) bool {
			p := make(onion.Point, c.dims)
			for i := range p {
				p[i] = raw[i] % c.side
			}
			h := c.c.Index(p)
			return c.c.Coords(h, nil).Equal(p)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.c.Name(), err)
		}
	}
}

// TestDecomposeCoversQuick property-tests the decomposition contract
// through the public API.
func TestDecomposeCoversQuick(t *testing.T) {
	o, _ := onion.NewOnion2D(32)
	z, _ := onion.NewZCurve(2, 32)
	for _, c := range []onion.Curve{o, z} {
		c := c
		f := func(x0, y0, w, h uint8) bool {
			lo := onion.Point{uint32(x0 % 32), uint32(y0 % 32)}
			shape := []uint32{uint32(w%8) + 1, uint32(h%8) + 1}
			r, err := onion.RectAt(lo, shape)
			if err != nil || r.Hi[0] >= 32 || r.Hi[1] >= 32 {
				return true
			}
			rs, err := onion.Decompose(c, r)
			if err != nil {
				return false
			}
			var cells uint64
			for _, kr := range rs {
				cells += kr.Cells()
			}
			n, err := onion.ClusterCount(c, r)
			return err == nil && cells == r.Cells() && uint64(len(rs)) == n
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}
