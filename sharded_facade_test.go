package onion_test

import (
	"errors"
	"testing"

	onion "github.com/onioncurve/onion"
)

// TestOpenShardedEngineFacade exercises the sharded query service
// through the public facade: the Put/Delete/Query/Flush/Compact/Stats/
// Close lifecycle, a reopen with the recorded configuration, and the
// equivalence of a sharded query with a single-engine query over the
// same records.
func TestOpenShardedEngineFacade(t *testing.T) {
	o, err := onion.NewOnion2D(64)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := onion.ShardedEngineOptions{
		Shards: 4,
		Engine: onion.EngineOptions{PageBytes: 512},
	}
	s, err := onion.OpenShardedEngine(dir, o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", s.Shards())
	}
	single, err := onion.OpenEngine(t.TempDir(), o, opts.Engine)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	for x := uint32(0); x < 64; x++ {
		for y := uint32(0); y < 16; y++ {
			p := onion.Point{x, y}
			v := uint64(x)<<8 | uint64(y)
			if err := s.Put(p, v); err != nil {
				t.Fatal(err)
			}
			if err := single.Put(p, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Delete(onion.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := single.Delete(onion.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	q, err := onion.RectAt(onion.Point{0, 0}, []uint32{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	recs, st, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, wst, err := single.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("%d records, single engine %d", len(recs), len(want))
	}
	for i := range want {
		if !recs[i].Point.Equal(want[i].Point) || recs[i].Payload != want[i].Payload {
			t.Fatalf("record %d = %v/%d, single engine %v/%d",
				i, recs[i].Point, recs[i].Payload, want[i].Point, want[i].Payload)
		}
	}
	if st.Planned != wst.Planned || st.Results != wst.Results {
		t.Fatalf("sharded stats %+v vs single %+v", st, wst)
	}
	if st.ShardsTouched < 1 || len(st.PerShard) != st.ShardsTouched {
		t.Fatalf("fan-out stats %+v", st)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	es := s.Stats()
	if len(es.PerShard) != 4 || es.SegmentRecords != 64*16-1 {
		t.Fatalf("engine stats %+v", es)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening with a different shard count must refuse.
	bad := opts
	bad.Shards = 2
	if _, err := onion.OpenShardedEngine(dir, o, bad); err == nil {
		t.Fatal("shard count change accepted")
	}
	// The recorded configuration reopens with all data.
	s2, err := onion.OpenShardedEngine(dir, o, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	all, _, err := s2.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 64*16-1 {
		t.Fatalf("reopened engine has %d records, want %d", len(all), 64*16-1)
	}
	// Budget admission control through the facade.
	tight := onion.ShardedEngineOptions{
		Shards:           2,
		Engine:           onion.EngineOptions{PageBytes: 512},
		MaxPlannedRanges: 1,
	}
	s3, err := onion.OpenShardedEngine(t.TempDir(), o, tight)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, _, err := s3.Query(o.Universe().Rect()); err != nil {
		t.Fatal(err) // the full universe is one range: under budget
	}
	col := onion.Rect{Lo: onion.Point{3, 0}, Hi: onion.Point{3, 63}}
	if _, _, err := s3.Query(col); err == nil {
		t.Fatal("over-budget query accepted")
	} else if !errors.Is(err, onion.ErrShardBudget) {
		t.Fatalf("over-budget query: %v", err)
	}
}
