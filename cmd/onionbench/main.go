// Command onionbench reproduces every table and figure of "Onion Curve: A
// Space Filling Curve with Near-Optimal Clustering" (Xu, Nguyen,
// Tirthapura, ICDE 2018).
//
// Usage:
//
//	onionbench -exp all            # everything, paper-scale parameters
//	onionbench -exp fig5a,fig5b    # selected experiments
//	onionbench -exp all -quick     # small universes, seconds not minutes
//
// Experiments: fig1 fig2 table1 table2 fig5a fig5b fig6a fig6b fig7a fig7b
// lemma5 thm1 lb seeks fanout ablation spread eta. Add -format csv for
// machine-readable output of the distribution figures, lemma5 and eta.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/onioncurve/onion/internal/experiments"
)

func main() {
	var (
		expList = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick   = flag.Bool("quick", false, "shrink universes and sample counts")
		seed    = flag.Int64("seed", 1, "workload RNG seed")
		format  = flag.String("format", "table", "output format: table or csv (distribution figures, lemma5, eta)")
	)
	flag.Parse()
	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	asCSV := *format == "csv"
	if *format != "table" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	type exp struct {
		id  string
		run func() (string, error)
	}
	all := []exp{
		{"fig1", func() (string, error) { return experiments.Fig1() }},
		{"fig2", func() (string, error) {
			rows, err := experiments.Fig2(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig2(rows), nil
		}},
		{"table1", func() (string, error) {
			out, _, err := experiments.Table1(cfg)
			return out, err
		}},
		{"table2", func() (string, error) { return experiments.Table2(), nil }},
		{"fig5a", distRunner(cfg, asCSV, "Figure 5a: 2D random squares", experiments.Fig5a)},
		{"fig5b", distRunner(cfg, asCSV, "Figure 5b: 3D random cubes", experiments.Fig5b)},
		{"fig6a", distRunner(cfg, asCSV, "Figure 6a: 2D fixed-ratio rectangles (Algorithm 1)", experiments.Fig6a)},
		{"fig6b", distRunner(cfg, asCSV, "Figure 6b: 3D fixed-ratio rectangles", experiments.Fig6b)},
		{"fig7a", distRunner(cfg, asCSV, "Figure 7a: 2D random-endpoint rectangles", experiments.Fig7a)},
		{"fig7b", distRunner(cfg, asCSV, "Figure 7b: 3D random-endpoint rectangles", experiments.Fig7b)},
		{"lemma5", func() (string, error) {
			rows, err := experiments.Lemma5(cfg)
			if err != nil {
				return "", err
			}
			if asCSV {
				return experiments.Lemma5CSV(rows), nil
			}
			return experiments.RenderLemma5(rows), nil
		}},
		{"thm1", func() (string, error) {
			rows, err := experiments.Thm1(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderThm1(rows), nil
		}},
		{"lb", func() (string, error) {
			rows, err := experiments.LowerBounds(cfg)
			if err != nil {
				return "", err
			}
			names := []string{"onion", "hilbert", "snake", "zcurve", "graycode", "rowmajor"}
			return experiments.RenderLowerBounds(rows, names), nil
		}},
		{"seeks", func() (string, error) {
			rows, err := experiments.Seeks(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderSeeks(rows), nil
		}},
		{"fanout", func() (string, error) {
			rows, err := experiments.Fanout(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderFanout(rows), nil
		}},
		{"ablation", func() (string, error) {
			rows, err := experiments.Ablation(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderAblation(rows), nil
		}},
		{"spread", func() (string, error) {
			rows, err := experiments.SpreadExp(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderSpread(rows), nil
		}},
		{"eta", func() (string, error) {
			rows, err := experiments.Eta(cfg)
			if err != nil {
				return "", err
			}
			if asCSV {
				return experiments.EtaCSV(rows), nil
			}
			return experiments.RenderEta(rows), nil
		}},
	}

	want := map[string]bool{}
	runAll := *expList == "all"
	for _, id := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(id)] = true
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.id] = true
	}
	for id := range want {
		if id != "all" && id != "" && !known[id] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: fig1 fig2 table1 table2 fig5a fig5b fig6a fig6b fig7a fig7b lemma5 thm1 lb seeks fanout ablation spread eta\n", id)
			os.Exit(2)
		}
	}

	for _, e := range all {
		if !runAll && !want[e.id] {
			continue
		}
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.id, time.Since(start).Seconds(), out)
	}
}

func distRunner(cfg experiments.Config, asCSV bool, title string, fn func(experiments.Config) ([]experiments.DistRow, error)) func() (string, error) {
	return func() (string, error) {
		rows, err := fn(cfg)
		if err != nil {
			return "", err
		}
		if asCSV {
			return experiments.DistRowsCSV(rows), nil
		}
		return experiments.RenderDistRows(title, rows), nil
	}
}
