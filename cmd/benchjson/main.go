// Command benchjson converts `go test -bench` output read from stdin into
// a JSON array on stdout, one object per benchmark result. CI uses it to
// publish benchmark artifacts (BENCH_*.json) that successive revisions can
// be compared against.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=100x ./... | go run ./cmd/benchjson > BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in structured form. Custom metrics emitted
// via testing.B.ReportMetric (for example the decomposition benchmarks'
// "ranges/op") are collected under Extra keyed by their unit.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results := []Result{} // encode [] rather than null when nothing parses
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine recognizes lines of the form
//
//	BenchmarkName-8   100   123.4 ns/op [ 56 B/op  7 allocs/op ]
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i++ {
		val := fields[i]
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			if ns, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = ns
				seen = true
			}
		case "B/op":
			if b, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = &b
			}
		case "allocs/op":
			if a, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = &a
			}
		default:
			// Custom ReportMetric units are rates by convention — usually
			// "x/op", but batching benchmarks also report per-batch shapes
			// ("ops/batch") and tail latencies ("p99ack-us"), so accept any
			// unit-looking token after a number that is not itself a number.
			if !strings.ContainsAny(unit, "/-") {
				continue
			}
			if _, err := strconv.ParseFloat(unit, 64); err == nil {
				continue // a bare number is a value, not a unit
			}
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
	}
	return r, seen
}
