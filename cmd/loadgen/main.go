// Command loadgen drives concurrent mixed read/write traffic against the
// sharded query service and reports throughput, latency and physical
// I/O statistics — the workbench for measuring how query throughput
// scales with the shard count.
//
// Example:
//
//	loadgen -shards 4 -writers 4 -readers 4 -duration 10s
//	loadgen -sweep 1,2,4,8 -duration 5s   # throughput-vs-shard-count table
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	onion "github.com/onioncurve/onion"
)

func main() {
	var (
		shards   = flag.Int("shards", 4, "shard count (ignored with -sweep)")
		sweep    = flag.String("sweep", "", "comma-separated shard counts to sweep, e.g. 1,2,4,8")
		writers  = flag.Int("writers", 4, "concurrent writer goroutines")
		readers  = flag.Int("readers", 4, "concurrent reader goroutines")
		duration = flag.Duration("duration", 5*time.Second, "measurement window per configuration")
		side     = flag.Uint("side", 1024, "universe side (side x side grid)")
		qside    = flag.Uint("qside", 64, "query rectangle side")
		preload  = flag.Int("preload", 100_000, "records ingested before the measurement window")
		dir      = flag.String("dir", "", "engine directory (default: a fresh temp dir per run)")
	)
	flag.Parse()
	if *qside >= *side {
		log.Fatalf("-qside (%d) must be smaller than -side (%d)", *qside, *side)
	}

	counts := []int{*shards}
	if *sweep != "" {
		counts = counts[:0]
		for _, f := range strings.Split(*sweep, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || k < 1 {
				log.Fatalf("bad -sweep entry %q", f)
			}
			counts = append(counts, k)
		}
	}
	fmt.Printf("loadgen: %dx%d onion universe, %d writers + %d readers, %v per run\n\n",
		*side, *side, *writers, *readers, *duration)
	fmt.Printf("%7s  %12s  %12s  %12s  %10s\n", "shards", "writes/s", "queries/s", "avg seeks/q", "records/q")
	for _, k := range counts {
		w, q, seeks, recs, err := run(k, *writers, *readers, *duration, uint32(*side), uint32(*qside), *preload, *dir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d  %12.0f  %12.0f  %12.1f  %10.0f\n", k, w, q, seeks, recs)
	}
}

// run measures one shard-count configuration and returns writes/sec,
// queries/sec, average seeks per query and average records per query.
func run(shards, writers, readers int, d time.Duration, side, qside uint32, preload int, dir string) (float64, float64, float64, float64, error) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "onion-loadgen")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else {
		// One subdirectory per configuration: a sharded directory's
		// manifest pins its shard count, so a sweep cannot reuse it.
		dir = filepath.Join(dir, fmt.Sprintf("shards-%d", shards))
	}
	o, err := onion.NewOnion2D(side)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	s, err := onion.OpenShardedEngine(dir, o, onion.ShardedEngineOptions{Shards: shards})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer func() {
		if cerr := s.Close(); cerr != nil {
			log.Printf("close: %v", cerr)
		}
	}()

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < preload; i++ {
		pt := onion.Point{uint32(rng.Intn(int(side))), uint32(rng.Intn(int(side)))}
		if err := s.Put(pt, rng.Uint64()); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	if err := s.Flush(); err != nil {
		return 0, 0, 0, 0, err
	}

	var writes, queries, seeks, results atomic.Int64
	var failure atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pt := onion.Point{uint32(rng.Intn(int(side))), uint32(rng.Intn(int(side)))}
				var err error
				if rng.Intn(10) == 0 {
					err = s.Delete(pt)
				} else {
					err = s.Put(pt, rng.Uint64())
				}
				if err != nil {
					failure.Store(err)
					return
				}
				writes.Add(1)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				span := int(side - qside)
				q, err := onion.RectAt(
					onion.Point{uint32(rng.Intn(span)), uint32(rng.Intn(span))},
					[]uint32{qside, qside})
				if err != nil {
					failure.Store(err)
					return
				}
				recs, st, err := s.Query(q)
				if err != nil {
					failure.Store(err)
					return
				}
				queries.Add(1)
				seeks.Add(int64(st.Seeks))
				results.Add(int64(len(recs)))
				// Yield between queries: with GOMAXPROCS=1 a
				// zero-think-time query loop can monopolize the scheduler
				// through the router's channel handoffs and starve the
				// writers, skewing the measurement.
				runtime.Gosched()
			}
		}(r)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	if err, _ := failure.Load().(error); err != nil {
		return 0, 0, 0, 0, err
	}
	secs := d.Seconds()
	qn := float64(queries.Load())
	if qn == 0 {
		qn = 1
	}
	return float64(writes.Load()) / secs, float64(queries.Load()) / secs,
		float64(seeks.Load()) / qn, float64(results.Load()) / qn, nil
}
