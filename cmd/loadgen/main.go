// Command loadgen drives concurrent mixed read/write traffic against the
// sharded query service and reports throughput, latency and physical
// I/O statistics — the workbench for measuring how query throughput
// scales with the shard count and how much of the logical page traffic
// the shared page cache absorbs.
//
// Example:
//
//	loadgen -shards 4 -writers 4 -readers 4 -duration 10s
//	loadgen -sweep 1,2,4,8 -duration 5s      # throughput vs shard count
//	loadgen -cache 0,262144,8388608          # throughput vs cache budget
//	loadgen -sync                            # group-committed durable writes
//	loadgen -arrival-rate 50000 -sync        # open-loop Poisson arrivals via async ingest
//	loadgen -faults enospc:sync:200:wal-     # every 200th WAL fsync hits ENOSPC
//	loadgen -replicas 2                      # quorum-replicated writes, 2 followers/shard
//	loadgen -replicas 2 -repl-faults drop:50 # every 50th replica append is lost
//	loadgen -snapshot-every 2s               # incremental snapshots under load
//	loadgen -faults corrupt:read:500 -repair # corrupt reads, then repair + recover
//	loadgen -metrics-addr :9090              # live /metrics + /telemetry.json endpoint
//	loadgen -status-every 1s                 # periodic live status line
//	loadgen -telemetry-out run.json          # final snapshot (+ run.json.prom)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	onion "github.com/onioncurve/onion"
	"github.com/onioncurve/onion/internal/repl"
	"github.com/onioncurve/onion/internal/vfs"
)

var faultKinds = map[string]vfs.Kind{
	"fail": vfs.KindFail, "enospc": vfs.KindNoSpace, "shortwrite": vfs.KindShortWrite,
	"syncloss": vfs.KindSyncLoss, "corrupt": vfs.KindCorrupt, "crash": vfs.KindCrash,
}

var faultOps = map[string]vfs.Op{
	"any": vfs.OpAny, "open": vfs.OpOpen, "create": vfs.OpCreate, "read": vfs.OpRead,
	"write": vfs.OpWrite, "sync": vfs.OpSync, "rename": vfs.OpRename, "remove": vfs.OpRemove,
	"readdir": vfs.OpReadDir, "mkdir": vfs.OpMkdir, "syncdir": vfs.OpSyncDir,
}

// parseFaults parses a comma-separated list of soak-mode fault rules,
// each kind:op:n[:path] — every nth operation matching op (and the
// optional path substring) fails with kind.
func parseFaults(spec string) ([]vfs.Fault, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []vfs.Fault
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(entry), ":", 4)
		if len(parts) < 3 {
			return nil, fmt.Errorf("fault %q: want kind:op:n[:path]", entry)
		}
		kind, ok := faultKinds[parts[0]]
		if !ok {
			return nil, fmt.Errorf("fault %q: unknown kind %q", entry, parts[0])
		}
		op, ok := faultOps[parts[1]]
		if !ok {
			return nil, fmt.Errorf("fault %q: unknown op %q", entry, parts[1])
		}
		n, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("fault %q: bad interval %q", entry, parts[2])
		}
		f := vfs.Fault{Kind: kind, Op: op, N: n, Repeat: true}
		if len(parts) == 4 {
			f.Path = parts[3]
		}
		out = append(out, f)
	}
	return out, nil
}

var replFaultKinds = map[string]repl.FaultKind{
	"drop": repl.KindDrop, "dropack": repl.KindDropAck, "dup": repl.KindDup,
	"stale": repl.KindStale, "delay": repl.KindDelay, "crash": repl.KindCrash,
	"crashack": repl.KindCrashAck,
}

// parseReplFaults parses a comma-separated list of replication
// transport fault rules, each kind:n — every nth append to a follower
// suffers kind (drop, dropack, dup, stale, delay, crash, crashack).
func parseReplFaults(spec string) ([]repl.Fault, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []repl.Fault
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(entry), ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("repl fault %q: want kind:n", entry)
		}
		kind, ok := replFaultKinds[parts[0]]
		if !ok {
			return nil, fmt.Errorf("repl fault %q: unknown kind %q", entry, parts[0])
		}
		n, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("repl fault %q: bad interval %q", entry, parts[1])
		}
		out = append(out, repl.Fault{Op: repl.FaultAppend, Kind: kind, N: n, Repeat: true})
	}
	return out, nil
}

// errTally counts worker errors by failure category instead of killing
// the run: under injected faults, errors are the expected output.
type errTally struct {
	mu sync.Mutex
	m  map[string]int64
}

func (t *errTally) add(err error) {
	cat := "other"
	switch {
	case errors.Is(err, onion.ErrIngestBackpressure):
		cat = "backpressure"
	case errors.Is(err, onion.ErrQuorum):
		cat = "quorum"
	case errors.Is(err, onion.ErrReadOnly):
		cat = "readonly"
	case errors.Is(err, onion.ErrCorrupt):
		cat = "corrupt"
	case errors.Is(err, vfs.ErrCrashed):
		cat = "crashed"
	case errors.Is(err, vfs.ErrInjected):
		cat = "injected"
	case errors.Is(err, onion.ErrShardBudget):
		cat = "budget"
	}
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[string]int64)
	}
	t.m[cat]++
	t.mu.Unlock()
}

func (t *errTally) snapshot() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.m))
	for k, v := range t.m {
		out[k] = v
	}
	return out
}

func parseInts(s, flagName string) []int64 {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		k, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil || k < 0 {
			log.Fatalf("bad %s entry %q", flagName, f)
		}
		out = append(out, k)
	}
	return out
}

func main() {
	var (
		shards       = flag.Int("shards", 4, "shard count (ignored with -sweep)")
		sweep        = flag.String("sweep", "", "comma-separated shard counts to sweep, e.g. 1,2,4,8")
		cache        = flag.String("cache", "", "comma-separated page-cache byte budgets to sweep, e.g. 0,262144,8388608")
		sync         = flag.Bool("sync", false, "fsync every write (group-committed)")
		arrivalRate  = flag.Float64("arrival-rate", 0, "open-loop write arrivals per second (Poisson) through the async ingest pipeline; overload surfaces as enqueue-wait and ack tail latency (0 = closed-loop writers)")
		ingestRing   = flag.Int("ingest-ring", 0, "ingest ring capacity for -arrival-rate mode (0 = pipeline default); smaller rings trade ack latency for earlier backpressure")
		ingestBatch  = flag.Int("ingest-batch", 0, "max ops per coalesced ingest batch for -arrival-rate mode (0 = pipeline default)")
		writers      = flag.Int("writers", 4, "concurrent writer goroutines")
		readers      = flag.Int("readers", 4, "concurrent reader goroutines")
		duration     = flag.Duration("duration", 5*time.Second, "measurement window per configuration")
		side         = flag.Uint("side", 1024, "universe side (side x side grid)")
		qside        = flag.Uint("qside", 64, "query rectangle side")
		preload      = flag.Int("preload", 100_000, "records ingested before the measurement window")
		dir          = flag.String("dir", "", "engine directory (default: a fresh temp dir per run)")
		faultStr     = flag.String("faults", "", "comma-separated soak faults kind:op:n[:path], e.g. enospc:sync:200:wal- (activated after preload)")
		replicas     = flag.Int("replicas", 0, "followers per shard behind an in-process transport; every write quorum-commits and implies durable (-sync) writes (0 disables replication)")
		replFaultStr = flag.String("repl-faults", "", "comma-separated replication transport faults kind:n, e.g. drop:50 (kinds: drop, dropack, dup, stale, delay, crash, crashack; activated after preload; needs -replicas)")
		snapEvery    = flag.Duration("snapshot-every", 0, "take a composite snapshot at this interval during the window, incremental after the first; the last one is restored and verified after the run (0 disables)")
		repair       = flag.Bool("repair", false, "after the window, repair quarantined segments from the latest snapshot and attempt health recovery")
		metricsAddr  = flag.String("metrics-addr", "", "serve the live telemetry roll-up over HTTP at this address: /metrics (Prometheus text) and /telemetry.json (empty disables)")
		statusEvery  = flag.Duration("status-every", 0, "print a live status line (qps, latency percentiles, cache hit rate, per-shard health, in-flight maintenance) at this interval (0 disables)")
		telemetryOut = flag.String("telemetry-out", "", "after each run, write the final telemetry snapshot as JSON to this path and Prometheus text to path+\".prom\"")
	)
	flag.Parse()
	faults, err := parseFaults(*faultStr)
	if err != nil {
		log.Fatal(err)
	}
	replFaults, err := parseReplFaults(*replFaultStr)
	if err != nil {
		log.Fatal(err)
	}
	if len(replFaults) > 0 && *replicas < 1 {
		log.Fatal("-repl-faults needs -replicas > 0")
	}
	if *qside >= *side {
		log.Fatalf("-qside (%d) must be smaller than -side (%d)", *qside, *side)
	}

	type config struct {
		shards     int
		cacheBytes int64
	}
	var configs []config
	if *sweep != "" && *cache != "" {
		log.Fatal("-sweep and -cache are mutually exclusive: sweep one dimension at a time")
	}
	switch {
	case *sweep != "":
		for _, k := range parseInts(*sweep, "-sweep") {
			if k < 1 {
				log.Fatalf("bad -sweep entry %d", k)
			}
			configs = append(configs, config{shards: int(k)})
		}
	case *cache != "":
		for _, b := range parseInts(*cache, "-cache") {
			configs = append(configs, config{shards: *shards, cacheBytes: b})
		}
	default:
		configs = append(configs, config{shards: *shards})
	}
	fmt.Printf("loadgen: %dx%d onion universe, %d writers + %d readers, sync=%v, %v per run\n\n",
		*side, *side, *writers, *readers, *sync, *duration)
	fmt.Printf("%7s  %10s  %12s  %12s  %12s  %10s  %7s  %9s\n",
		"shards", "cacheB", "writes/s", "queries/s", "avg seeks/q", "records/q", "hit%", "allocs/q")
	tele := teleOpts{addr: *metricsAddr, statusEvery: *statusEvery, out: *telemetryOut}
	for _, cfg := range configs {
		ing := onion.IngestConfig{Ring: *ingestRing, MaxBatch: *ingestBatch}
		m, err := run(cfg.shards, cfg.cacheBytes, *sync, *arrivalRate, ing, *writers, *readers,
			*duration, uint32(*side), uint32(*qside), *preload, *dir, faults,
			*replicas, replFaults, *snapEvery, *repair, tele)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d  %10d  %12.0f  %12.0f  %12.1f  %10.0f  %7.1f  %9.1f\n",
			cfg.shards, cfg.cacheBytes, m.writesPerSec, m.queriesPerSec,
			m.seeksPerQuery, m.recordsPerQuery, 100*m.hitRate, m.allocsPerQuery)
		if ig := m.ingest; ig != nil {
			fmt.Printf("         ingest: offered=%.0f/s acked=%d shed=%d ackerrs=%d ops/batch=%.1f coalesced=%d\n",
				*arrivalRate, ig.acked, ig.shed, ig.ackErrs, ig.opsPerBatch, ig.coalesced)
			fmt.Printf("         ingest: enqueue-wait p50=%v p99=%v p999=%v  ack p50=%v p99=%v p999=%v\n",
				ig.enqP50, ig.enqP99, ig.enqP999, ig.ackP50, ig.ackP99, ig.ackP999)
		}
		if rp := m.repl; rp != nil {
			fmt.Printf("         repl: %d replicas/shard  batches=%d seeds=%d quorum-lost=%d failovers=%d  lag end=%d final=%d\n",
				rp.replicas, rp.batches, rp.seeds, rp.quorumLost, rp.failovers, rp.lagEnd, rp.lagFinal)
		}
		printTallies("write errors", m.writeErrs)
		printTallies("query errors", m.queryErrs)
		printTallies("maintenance errors", m.maintErrs)
		if m.snapshots > 0 || m.salvaged > 0 || m.restored > 0 || m.repaired > 0 {
			fmt.Printf("         recovery: snapshots=%d repaired=%d salvaged=%d restored=%d\n",
				m.snapshots, m.repaired, m.salvaged, m.restored)
		}
		if m.degradedQueries > 0 {
			fmt.Printf("         %d queries served partial results\n", m.degradedQueries)
		}
		for _, h := range m.health {
			if h.State != onion.EngineHealthy {
				fmt.Printf("         shard %d %v: %v\n", h.Shard, h.State, h.Err)
			}
		}
	}
}

func printTallies(label string, m map[string]int64) {
	if len(m) == 0 {
		return
	}
	cats := make([]string, 0, len(m))
	for c := range m {
		cats = append(cats, c)
	}
	slices.Sort(cats)
	fmt.Printf("         %s:", label)
	for _, c := range cats {
		fmt.Printf(" %s=%d", c, m[c])
	}
	fmt.Println()
}

// metrics is one configuration's measurement.
type metrics struct {
	writesPerSec    float64
	queriesPerSec   float64
	seeksPerQuery   float64
	recordsPerQuery float64
	hitRate         float64
	allocsPerQuery  float64
	writeErrs       map[string]int64
	queryErrs       map[string]int64
	maintErrs       map[string]int64
	degradedQueries int64
	health          []onion.ShardHealth
	// Recovery tallies: snapshots committed during the window, files
	// repaired out of quarantine, records salvaged + back-filled by
	// repair, and records verified present in a restore of the last
	// snapshot.
	snapshots int64
	repaired  int64
	salvaged  int64
	restored  int64
	// ingest is set only in open-loop (-arrival-rate) mode.
	ingest *ingestReport
	// repl is set only in replicated (-replicas) mode.
	repl *replReport
}

// replReport is the replicated mode's readout: how much the followers
// trailed the leaders when the window closed (before the end-of-run
// heal), whether they converged after it (lagFinal), and the lifetime
// replication counters — quorum losses and failovers being the ones a
// hostile -repl-faults run is trying to provoke.
type replReport struct {
	replicas   int
	lagEnd     uint64
	lagFinal   uint64
	batches    int64
	seeds      int64
	quorumLost int64
	failovers  int64
}

// maxLag reduces a per-peer lag map to its worst entry.
func maxLag(m map[string]uint64) uint64 {
	var worst uint64
	for _, v := range m {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// ingestReport is the open-loop mode's tail-latency readout, pulled from
// the pipeline's own telemetry histograms after the window closes:
// enqueue-wait (time a blocking producer would have stalled for ring
// space — 0 for every uncontended arrival) and end-to-end ack latency
// (enqueue to post-fsync completion fan-out).
type ingestReport struct {
	acked       int64
	shed        int64
	ackErrs     int64
	coalesced   int64
	opsPerBatch float64
	enqP50      time.Duration
	enqP99      time.Duration
	enqP999     time.Duration
	ackP50      time.Duration
	ackP99      time.Duration
	ackP999     time.Duration
}

// teleOpts is the observability surface of one run: the live HTTP
// endpoint, the periodic status line, and the final snapshot files.
type teleOpts struct {
	addr        string
	statusEvery time.Duration
	out         string
}

// telemetrySource is anything that can export a telemetry roll-up —
// the sharded engine, or its replicated wrapper (whose snapshot adds
// the repl_* series).
type telemetrySource interface {
	TelemetrySnapshot() onion.TelemetrySnapshot
}

// serveTelemetry exposes the service's live telemetry roll-up over HTTP:
// GET /metrics renders Prometheus text exposition, GET /telemetry.json
// the expvar-style JSON document. The returned closer shuts the listener
// down.
func serveTelemetry(addr string, s telemetrySource) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := s.TelemetrySnapshot().WritePrometheus(w); err != nil {
			log.Printf("metrics: %v", err)
		}
	})
	mux.HandleFunc("/telemetry.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.TelemetrySnapshot().WriteJSON(w); err != nil {
			log.Printf("telemetry.json: %v", err)
		}
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // closed on shutdown
	log.Printf("telemetry at http://%s/metrics and /telemetry.json", ln.Addr())
	return func() { srv.Close() }, nil
}

// histDelta subtracts prev from cur bucket-wise — the window's own
// latency distribution, independent of everything recorded before it.
func histDelta(cur, prev *onion.TelemetryHistogram) onion.TelemetryHistogram {
	if cur == nil {
		return onion.TelemetryHistogram{}
	}
	d := *cur
	if prev != nil {
		for i := range d.Buckets {
			d.Buckets[i] -= prev.Buckets[i]
		}
		d.Count -= prev.Count
		d.Sum -= prev.Sum
	}
	return d
}

// healthLetters renders per-shard health as one letter per shard
// (H/D/R/F), the status line's most compact useful form.
func healthLetters(hs []onion.ShardHealth) string {
	var b strings.Builder
	for _, h := range hs {
		switch h.State {
		case onion.EngineHealthy:
			b.WriteByte('H')
		case onion.EngineDegraded:
			b.WriteByte('D')
		case onion.EngineReadOnly:
			b.WriteByte('R')
		default:
			b.WriteByte('F')
		}
	}
	return b.String()
}

// run measures one (shard count, cache budget) configuration.
func run(shards int, cacheBytes int64, syncWrites bool, arrivalRate float64, ing onion.IngestConfig,
	writers, readers int, d time.Duration, side, qside uint32, preload int, dir string,
	faults []vfs.Fault, replicas int, replFaults []repl.Fault,
	snapEvery time.Duration, repair bool, tele teleOpts) (metrics, error) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "onion-loadgen")
		if err != nil {
			return metrics{}, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else {
		// One subdirectory per configuration: a sharded directory's
		// manifest pins its shard count, so a sweep cannot reuse it.
		dir = filepath.Join(dir, fmt.Sprintf("shards-%d-cache-%d", shards, cacheBytes))
	}
	o, err := onion.NewOnion2D(side)
	if err != nil {
		return metrics{}, err
	}
	opts := onion.ShardedEngineOptions{Shards: shards, CacheBytes: cacheBytes}
	opts.Engine.SyncWrites = syncWrites
	// With -faults, every file operation of every shard funnels through
	// an injecting filesystem; the rules activate only after the
	// preload, so setup is clean and the measurement window is hostile.
	var inj *vfs.Injecting
	if len(faults) > 0 {
		inj = vfs.NewInjecting(vfs.OS{})
		opts.FS = inj
	}
	// With -replicas, every shard leads an in-process replica set: N
	// followers per shard behind a loopback transport (wrapped for fault
	// injection), and a write ack means "fsynced on a quorum of that
	// shard's replicas". The follower directories live next to the
	// service's so a temp-dir run cleans everything up together.
	var (
		r         *onion.ReplicatedShardedEngine
		rtr       *repl.Injecting
		followers []*repl.Follower
	)
	defer func() {
		for _, fo := range followers {
			fo.Close() //nolint:errcheck // best-effort teardown
		}
	}()
	var s *onion.ShardedEngine
	if replicas > 0 {
		lb := onion.NewReplLoopback()
		rtr = repl.NewInjectingTransport(lb)
		fe := opts.Engine
		fe.SyncWrites = true
		peerIDs := make([][]string, shards)
		for sh := 0; sh < shards; sh++ {
			for f := 1; f <= replicas; f++ {
				id := fmt.Sprintf("s%d-f%d", sh, f)
				fo, err := repl.OpenFollower(id, filepath.Join(dir, "replica-"+id), o,
					repl.FollowerOptions{Engine: fe})
				if err != nil {
					return metrics{}, err
				}
				followers = append(followers, fo)
				lb.Register(id, fo)
				peerIDs[sh] = append(peerIDs[sh], id)
			}
		}
		r, err = onion.OpenReplicatedShardedEngine(filepath.Join(dir, "service"), o, opts,
			func(sh int) onion.ReplConfig {
				return onion.ReplConfig{ID: fmt.Sprintf("shard-%d", sh), Peers: peerIDs[sh], Transport: rtr}
			})
		if err != nil {
			return metrics{}, err
		}
		s = r.Sharded
	} else {
		s, err = onion.OpenShardedEngine(dir, o, opts)
		if err != nil {
			return metrics{}, err
		}
	}
	defer func() {
		var cerr error
		if r != nil {
			cerr = r.Close()
		} else {
			cerr = s.Close()
		}
		if cerr != nil {
			log.Printf("close: %v", cerr)
		}
	}()
	if tele.addr != "" {
		var src telemetrySource = s
		if r != nil {
			src = r
		}
		closeSrv, err := serveTelemetry(tele.addr, src)
		if err != nil {
			return metrics{}, err
		}
		defer closeSrv()
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < preload; i++ {
		pt := onion.Point{uint32(rng.Intn(int(side))), uint32(rng.Intn(int(side)))}
		if err := s.Put(pt, rng.Uint64()); err != nil {
			return metrics{}, err
		}
	}
	if err := s.Flush(); err != nil {
		return metrics{}, err
	}
	if inj != nil {
		inj.SetFaults(faults...)
	}
	if rtr != nil && len(replFaults) > 0 {
		rtr.SetFaults(replFaults...)
	}

	var writes, queries, seeks, results, degraded atomic.Int64
	var writeErrs, queryErrs, maintErrs errTally
	m := metrics{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	// Open-loop mode: writes arrive on a Poisson process at -arrival-rate
	// per second through the async ingest pipeline instead of closed-loop
	// as-fast-as-acked workers. Arrival times are independent of service
	// time — a generator that falls behind schedule fires immediately
	// until it catches up — so overload cannot silently throttle the
	// offered load the way a closed loop does: it shows up in the
	// pipeline's own histograms as enqueue-wait (time stalled for ring
	// space) and end-to-end ack tail latency.
	var pipe *onion.IngestPipeline
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	if arrivalRate > 0 {
		pipe, err = s.NewIngest(ing)
		if err != nil {
			return metrics{}, err
		}
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			// Per-generator rate: superposed Poisson processes are one
			// Poisson process at the summed rate.
			lambda := arrivalRate / float64(writers)
			next := time.Now()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if pipe != nil {
					// Exponential inter-arrival, scheduled against the
					// previous arrival time, not "now": a generator that
					// falls behind fires immediately until it catches up,
					// preserving the offered rate.
					next = next.Add(time.Duration(rng.ExpFloat64() / lambda * float64(time.Second)))
					if wait := time.Until(next); wait > 0 {
						select {
						case <-stop:
							return
						case <-time.After(wait):
						}
					}
				}
				pt := onion.Point{uint32(rng.Intn(int(side))), uint32(rng.Intn(int(side)))}
				var err error
				// Open-loop enqueues are fire-and-forget: the ack fans back
				// through the handle the pipeline is timing anyway, so the
				// generator never waits on service time, only (under
				// backpressure) on ring space.
				switch {
				case pipe != nil && rng.Intn(10) == 0:
					_, err = pipe.DeleteAsync(wctx, pt)
				case pipe != nil:
					_, err = pipe.PutAsync(wctx, pt, rng.Uint64())
				case rng.Intn(10) == 0:
					err = s.Delete(pt)
				default:
					err = s.Put(pt, rng.Uint64())
				}
				if errors.Is(err, context.Canceled) {
					return // the window closed while we were stalled
				}
				if err != nil {
					// Degradation is data, not a reason to stop: count
					// the failure by category and keep offering load.
					writeErrs.add(err)
					continue
				}
				writes.Add(1)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			// Recycled record buffer: the steady-state query path
			// allocates nothing for the records themselves. No explicit
			// yield is needed even on GOMAXPROCS=1 — the router's bounded
			// handoff and end-of-query yield keep this zero-think-time
			// loop from starving the writers.
			var dst []onion.Record
			for {
				select {
				case <-stop:
					return
				default:
				}
				span := int(side - qside)
				q, err := onion.RectAt(
					onion.Point{uint32(rng.Intn(span)), uint32(rng.Intn(span))},
					[]uint32{qside, qside})
				if err != nil {
					queryErrs.add(err)
					continue
				}
				// Under injected faults, take whatever the healthy
				// shards can serve; Degraded in the stats marks the
				// queries that came back partial.
				pol := onion.ShardedQueryPolicy{Partial: inj != nil}
				var st onion.ShardedQueryStats
				dst, st, err = s.QueryAppendContext(context.Background(), dst[:0], q, pol)
				if err != nil {
					queryErrs.add(err)
					continue
				}
				if st.Degraded {
					degraded.Add(1)
				}
				queries.Add(1)
				seeks.Add(int64(st.Seeks))
				results.Add(int64(len(dst)))
			}
		}(r)
	}
	// Live status: one line per tick with the window's own rates and
	// latency distribution (counter and bucket deltas against the
	// previous tick), the cache hit rate, per-shard health letters, and
	// how much maintenance is in flight right now.
	if tele.statusEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(tele.statusEvery)
			defer tick.Stop()
			start := time.Now()
			var prevW, prevQ int64
			prev := s.Telemetry().Snapshot()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				cur := s.Telemetry().Snapshot()
				w, q := writes.Load(), queries.Load()
				lat := histDelta(cur.Hist("router_query_latency_us"), prev.Hist("router_query_latency_us"))
				hits := cur.Counter("cache_hits_total") - prev.Counter("cache_hits_total")
				misses := cur.Counter("cache_misses_total") - prev.Counter("cache_misses_total")
				hitPct := 0.0
				if hits+misses > 0 {
					hitPct = 100 * float64(hits) / float64(hits+misses)
				}
				inflight := 0
				for i := 0; i < s.Shards(); i++ {
					ev := s.Events(i)
					inflight += ev.InFlight(onion.EventFlush) + ev.InFlight(onion.EventCompaction) +
						ev.InFlight(onion.EventSnapshot) + ev.InFlight(onion.EventRepair)
				}
				per := tele.statusEvery.Seconds()
				fmt.Printf("  [%5.1fs] %7.0f q/s %7.0f w/s  p50=%v p99=%v p999=%v  cache %5.1f%%  health %s  maint in-flight %d\n",
					time.Since(start).Seconds(),
					float64(q-prevQ)/per, float64(w-prevW)/per,
					time.Duration(lat.Quantile(0.50))*time.Microsecond,
					time.Duration(lat.Quantile(0.99))*time.Microsecond,
					time.Duration(lat.Quantile(0.999))*time.Microsecond,
					hitPct, healthLetters(s.Health()), inflight)
				prev, prevW, prevQ = cur, w, q
			}
		}()
	}
	// Online backup: the maintenance goroutine snapshots the live service
	// on a fixed cadence — full first, then incremental against the
	// previous — through the same (possibly fault-injected) filesystem
	// the engines use. Failures are tallied, not fatal: an export must
	// never hurt the serving path.
	snapRoot := dir + "-snapshots"
	lastSnap := ""
	if snapEvery > 0 {
		defer os.RemoveAll(snapRoot)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(snapEvery)
			defer tick.Stop()
			for n := 1; ; n++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				sd := filepath.Join(snapRoot, fmt.Sprintf("snap-%04d", n))
				var err error
				if lastSnap == "" {
					_, err = s.Snapshot(sd)
				} else {
					_, err = s.SnapshotSince(sd, lastSnap)
				}
				if err != nil {
					maintErrs.add(err)
					continue
				}
				lastSnap = sd
				m.snapshots++
			}
		}()
	}
	time.Sleep(d)
	close(stop)
	wcancel() // release generators stalled in a blocking enqueue
	wg.Wait()
	runtime.ReadMemStats(&after)

	if pipe != nil {
		// Producers have stopped; drain the ring so every accepted arrival
		// is acknowledged before reading the histograms, then fold the
		// pipeline's telemetry into the run report. A failed batch is a
		// write error like any other.
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := pipe.Drain(dctx); err != nil {
			maintErrs.add(err)
		}
		cancel()
		if err := pipe.Close(); err != nil {
			writeErrs.add(err)
		}
		snap := pipe.Telemetry().Snapshot()
		ig := &ingestReport{
			acked:     int64(snap.Counter("ingest_acked_total")),
			shed:      int64(snap.Counter("ingest_backpressure_rejects_total")),
			ackErrs:   int64(snap.Counter("ingest_ack_errors_total")),
			coalesced: int64(snap.Counter("ingest_coalesced_total")),
		}
		if b := snap.Counter("ingest_batches_total"); b > 0 {
			ig.opsPerBatch = float64(snap.Counter("ingest_acked_total")+
				snap.Counter("ingest_ack_errors_total")) / float64(b)
		}
		if h := snap.Hist("ingest_enqueue_wait_us"); h != nil && h.Count > 0 {
			ig.enqP50 = time.Duration(h.Quantile(0.50)) * time.Microsecond
			ig.enqP99 = time.Duration(h.Quantile(0.99)) * time.Microsecond
			ig.enqP999 = time.Duration(h.Quantile(0.999)) * time.Microsecond
		}
		if h := snap.Hist("ingest_ack_latency_us"); h != nil && h.Count > 0 {
			ig.ackP50 = time.Duration(h.Quantile(0.50)) * time.Microsecond
			ig.ackP99 = time.Duration(h.Quantile(0.99)) * time.Microsecond
			ig.ackP999 = time.Duration(h.Quantile(0.999)) * time.Microsecond
		}
		m.ingest = ig
	}

	if r != nil {
		// End the hostile window for replication too: record how far the
		// followers trailed, then heal the transport (clearing rules and
		// reviving a crash-latched one), recover any quorum-degraded
		// shard, and drive catch-up to convergence. lagFinal should read
		// 0 — a residue here means catch-up itself is broken.
		lagEnd := maxLag(r.Lag())
		rtr.SetFaults()
		rtr.Revive()
		if err := r.TryRecover(); err != nil {
			maintErrs.add(err)
		}
		r.Heartbeat()
		snap := r.TelemetrySnapshot()
		m.repl = &replReport{
			replicas:   replicas,
			lagEnd:     lagEnd,
			lagFinal:   maxLag(r.Lag()),
			batches:    int64(snap.Counter("repl_batches_total")),
			seeds:      int64(snap.Counter("repl_seeds_total")),
			quorumLost: int64(snap.Counter("repl_quorum_lost_total")),
			failovers:  int64(snap.Counter("repl_failovers_total")),
		}
	}

	// End-of-window maintenance sweep: a final flush, full compaction and
	// verify pass, so every run's telemetry carries at least one flush,
	// compaction and scrub event and the final snapshot describes a
	// settled store. Failures are tallied like any other maintenance
	// error — under injected faults they are expected output.
	if err := s.Flush(); err != nil {
		maintErrs.add(err)
	}
	if err := s.Compact(); err != nil {
		maintErrs.add(err)
	}
	if _, err := s.Verify(); err != nil {
		maintErrs.add(err)
	}

	if repair {
		// Heal what the hostile window broke: quarantined segments repair
		// from the latest snapshot (pure salvage without one), then every
		// shard attempts guarded de-escalation back to Healthy.
		reps, err := s.Repair(lastSnap)
		if err != nil {
			maintErrs.add(err)
		}
		for _, r := range reps {
			m.repaired += int64(r.Repaired)
			m.salvaged += int64(r.Salvaged + r.Backfilled)
		}
		s.TryRecover()
	}
	if lastSnap != "" {
		// Verify the backup chain end-to-end: restore the last committed
		// snapshot (plus archived WALs) on the real filesystem and count
		// what comes back.
		cleanOpts := opts
		cleanOpts.FS = nil
		reps, err := onion.RestoreShardedEngine(lastSnap, filepath.Join(snapRoot, "restored"), -1, o, cleanOpts)
		if err != nil {
			maintErrs.add(err)
		}
		for _, r := range reps {
			m.restored += int64(r.Records)
		}
	}
	secs := d.Seconds()
	qn := float64(queries.Load())
	if qn == 0 {
		qn = 1
	}
	cst := s.CacheStats()
	m.writesPerSec = float64(writes.Load()) / secs
	m.queriesPerSec = float64(queries.Load()) / secs
	m.seeksPerQuery = float64(seeks.Load()) / qn
	m.recordsPerQuery = float64(results.Load()) / qn
	m.hitRate = cst.HitRate()
	// Mallocs across the window covers writers, flushes and the
	// router; per query it is the end-to-end allocation pressure of
	// serving, not just the engine's (zero-alloc) merge path.
	m.allocsPerQuery = float64(after.Mallocs-before.Mallocs) / qn
	m.writeErrs = writeErrs.snapshot()
	m.queryErrs = queryErrs.snapshot()
	m.maintErrs = maintErrs.snapshot()
	m.degradedQueries = degraded.Load()
	m.health = s.Health()
	if tele.out != "" {
		snap := s.TelemetrySnapshot()
		if r != nil {
			snap = r.TelemetrySnapshot()
		}
		if err := writeTelemetry(tele.out, snap); err != nil {
			return metrics{}, err
		}
	}
	return m, nil
}

// writeTelemetry renders the final roll-up twice: the JSON document at
// path, the Prometheus text exposition at path+".prom".
func writeTelemetry(path string, snap onion.TelemetrySnapshot) error {
	jf, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	pf, err := os.Create(path + ".prom")
	if err != nil {
		return err
	}
	if err := snap.WritePrometheus(pf); err != nil {
		pf.Close()
		return err
	}
	return pf.Close()
}
