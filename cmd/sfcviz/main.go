// Command sfcviz draws space filling curves and query clusterings on small
// grids, reproducing the style of the paper's Figures 1-3.
//
// Usage:
//
//	sfcviz -curve onion -side 8                 # numbered curve order
//	sfcviz -curve hilbert -side 8 -query 1,1,4,6  # cluster letters
//	sfcviz -list                                # available curves
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	onion "github.com/onioncurve/onion"
)

func curveByName(name string, side uint32) (onion.Curve, error) {
	switch name {
	case "onion":
		return onion.NewOnion2D(side)
	case "onionnd":
		return onion.NewOnionND(2, side)
	case "layerlex":
		return onion.NewLayerLex(2, side)
	case "hilbert":
		return onion.NewHilbert(2, side)
	case "zcurve", "z", "morton":
		return onion.NewZCurve(2, side)
	case "gray", "graycode":
		return onion.NewGrayCode(2, side)
	case "peano":
		return onion.NewPeano(2, side)
	case "rowmajor":
		return onion.NewRowMajor(2, side)
	case "colmajor":
		return onion.NewColumnMajor(2, side)
	case "snake":
		return onion.NewSnake(2, side)
	default:
		return nil, fmt.Errorf("unknown curve %q", name)
	}
}

func main() {
	var (
		name   = flag.String("curve", "onion", "curve name")
		side   = flag.Uint("side", 8, "universe side")
		query  = flag.String("query", "", "x0,y0,x1,y1 — draw this query's clusters instead of the order")
		list   = flag.Bool("list", false, "list available curves")
		slices = flag.Bool("3d", false, "render the 3D curve (onion/hilbert/zcurve only) as z-slices")
	)
	flag.Parse()
	if *list {
		fmt.Println("onion onionnd layerlex hilbert zcurve graycode peano rowmajor colmajor snake")
		return
	}
	if *slices {
		var c onion.Curve
		var err error
		switch *name {
		case "onion":
			c, err = onion.NewOnion3D(uint32(*side))
		case "hilbert":
			c, err = onion.NewHilbert(3, uint32(*side))
		case "zcurve", "z", "morton":
			c, err = onion.NewZCurve(3, uint32(*side))
		default:
			err = fmt.Errorf("no 3D constructor for %q", *name)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		out, err := onion.DrawCurveSlices(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s on %v:\n%s", c.Name(), c.Universe(), out)
		return
	}
	c, err := curveByName(*name, uint32(*side))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *query == "" {
		grid, err := onion.DrawCurve(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s on %v (y grows upward):\n%s", c.Name(), c.Universe(), grid)
		return
	}
	parts := strings.Split(*query, ",")
	if len(parts) != 4 {
		fmt.Fprintln(os.Stderr, "query must be x0,y0,x1,y1")
		os.Exit(2)
	}
	var v [4]uint32
	for i, p := range parts {
		x, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad query coordinate %q\n", p)
			os.Exit(2)
		}
		v[i] = uint32(x)
	}
	r, err := onion.NewRect(onion.Point{v[0], v[1]}, onion.Point{v[2], v[3]})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pic, n, err := onion.DrawQuery(c, r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: query %v has %d cluster(s)\n%s", c.Name(), r, n, pic)
}
